"""Built-in codecs: the six ``repro.quant`` backends plus BBS pruning and
lossless bit-plane encoding, wrapped behind the uniform :class:`Codec` API.

Numerical behaviour is identical to the bespoke entry points these codecs
wrap (the service's ``quantize_tensor`` scenario dispatches through them and
its results are digest-compatible with the pre-codec implementation):

========  =====================================================  =========
Codec     Wraps                                                  Lossless
========  =====================================================  =========
ptq       :func:`repro.quant.quantize_per_channel`               no
ant       :func:`repro.quant.ant_quantize`                       no
bitflip   :func:`repro.quant.bitflip_tensor`                     no
microscaling  :func:`repro.quant.microscaling_quantize`          no
noisyquant    :func:`repro.quant.noisyquant_quantize`            no
olive     :func:`repro.quant.olive_quantize`                     no
prune     :func:`repro.core.prune_tensor` (BBS binary pruning)   no
bitplane  :mod:`repro.core.bitplane` redundant-column encoding   yes
========  =====================================================  =========

The integer-domain codecs (``bitflip``, ``prune``, ``bitplane``) accept both
already-quantized integer matrices (used directly) and floating-point
matrices (symmetric per-channel PTQ at ``bits`` first, exactly like the
``quantize_tensor`` scenario always did); the reconstruction is returned in
the input domain either way, so MSE is always comparable across codecs.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..core.bitplane import to_bitplanes
from ..core.encoding import (
    MAX_REDUNDANT_COLUMNS,
    METADATA_BITS,
)
from .base import Codec, CompressionResult, as_weight_matrix
from .registry import register_codec

__all__ = [
    "AntCodec",
    "BitflipCodec",
    "BitplaneCodec",
    "MicroscalingCodec",
    "NoisyQuantCodec",
    "OliveCodec",
    "PruneCodec",
    "PTQCodec",
]


def _per_channel_codes(tensor: np.ndarray, bits: int):
    """Symmetric per-channel PTQ front end shared by the integer-domain codecs.

    Returns ``(codes, scales)`` with ``codes`` int64; integer input passes
    through with unit scales (it is already in the code domain).
    """
    from .. import quant

    if np.issubdtype(tensor.dtype, np.integer):
        return tensor.astype(np.int64), None
    quantized = quant.quantize_per_channel(tensor, bits=bits)
    return quantized.values, quantized.scales


def _to_input_domain(codes: np.ndarray, scales: np.ndarray | None) -> np.ndarray:
    """Map integer codes back to the caller's domain (float iff scaled)."""
    if scales is None:
        return codes
    return codes.astype(np.float64) * scales[:, None]


def _round_to_int_domain(reconstruction: np.ndarray, like: np.ndarray) -> np.ndarray:
    """Round a float reconstruction back into an integer input's domain.

    Clips only against the *dtype's* representable range (overflow guard for
    the cast); the values themselves are bounded by the per-channel scales,
    so wide integer inputs reconstruct at their real magnitude instead of
    being crushed into a hardcoded int8 range.
    """
    info = np.iinfo(like.dtype)
    return np.clip(np.round(reconstruction), info.min, info.max).astype(like.dtype)


@register_codec
class PTQCodec(Codec):
    name = "ptq"
    version = "1"
    summary = (
        "Symmetric uniform post-training quantization (per-channel or "
        "per-tensor, optional MSE-optimal clipping)."
    )
    defaults = {"bits": 8, "per_channel": True, "calibrate": None}

    def compress(self, tensor: np.ndarray, **params: Any) -> CompressionResult:
        from .. import quant

        tensor = as_weight_matrix(tensor)
        bits = int(params["bits"])
        calibrate = params["calibrate"]
        if calibrate is None:
            # Max-abs scaling is fine at 8 bits; clipping calibration only
            # pays off at aggressive precisions (mirrors the legacy scenario).
            calibrate = bits < 6
        quantizer = (
            quant.quantize_per_channel if params["per_channel"] else quant.quantize_per_tensor
        )
        quantized = quantizer(tensor.astype(np.float64), bits=bits, calibrate=bool(calibrate))
        reconstruction = quant.dequantize(quantized)
        if np.issubdtype(tensor.dtype, np.integer):
            reconstruction = _round_to_int_domain(reconstruction, tensor)
        return self._result(
            tensor,
            reconstruction,
            storage_bits=tensor.size * bits,
            params=params,
            payload=quantized,
        )

    def decompress(self, result: CompressionResult) -> np.ndarray:
        from .. import quant

        if result.payload is None:
            return super().decompress(result)
        reconstruction = quant.dequantize(result.payload)
        if np.issubdtype(result.values.dtype, np.integer):
            reconstruction = _round_to_int_domain(reconstruction, result.values)
        return reconstruction


@register_codec
class AntCodec(Codec):
    name = "ant"
    version = "1"
    summary = "ANT adaptive-datatype quantization (int / power-of-two / flint)."
    defaults = {"bits": 6}

    def compress(self, tensor: np.ndarray, **params: Any) -> CompressionResult:
        from .. import quant

        tensor = as_weight_matrix(tensor)
        result = quant.ant_quantize(tensor, bits=int(params["bits"]))
        counts: dict[str, int] = {}
        for datatype in result.chosen_datatypes:
            counts[datatype] = counts.get(datatype, 0) + 1
        return self._result(
            tensor,
            result.values,
            storage_bits=tensor.size * result.effective_bits(),
            params=params,
            payload=result,
            extras={f"datatype_{name}": float(n) for name, n in sorted(counts.items())},
        )


@register_codec
class BitflipCodec(Codec):
    name = "bitflip"
    version = "1"
    summary = "BitWave-style sign-magnitude zero-column bit-flip pruning."
    defaults = {"bits": 8, "num_columns": 4, "group_size": 32}

    def compress(self, tensor: np.ndarray, **params: Any) -> CompressionResult:
        from .. import quant

        tensor = as_weight_matrix(tensor)
        bits = int(params["bits"])
        codes, scales = _per_channel_codes(tensor, bits)
        result = quant.bitflip_tensor(
            codes,
            int(params["num_columns"]),
            group_size=int(params["group_size"]),
            bits=bits,
        )
        reconstruction = _to_input_domain(result.values, scales)
        return self._result(
            tensor,
            reconstruction,
            storage_bits=result.storage_bits(),
            params=params,
            payload=(result, scales),
            extras={
                "inherent_zero_columns": float(result.inherent_zero_columns.sum()),
                "forced_zero_columns": float(result.forced_zero_columns.sum()),
            },
        )

    def decompress(self, result: CompressionResult) -> np.ndarray:
        if result.payload is None:
            return super().decompress(result)
        pruned, scales = result.payload
        return _to_input_domain(pruned.values, scales)


@register_codec
class MicroscalingCodec(Codec):
    name = "microscaling"
    version = "1"
    summary = "MX shared-exponent block format (8-bit exponent per block)."
    defaults = {"bits": 6, "group_size": 32}

    def compress(self, tensor: np.ndarray, **params: Any) -> CompressionResult:
        from .. import quant

        tensor = as_weight_matrix(tensor)
        result = quant.microscaling_quantize(
            tensor,
            element_bits=int(params["bits"]),
            block_size=int(params["group_size"]),
        )
        return self._result(
            tensor,
            result.values,
            storage_bits=tensor.size * result.effective_bits(),
            params=params,
            payload=result,
        )


@register_codec
class NoisyQuantCodec(Codec):
    name = "noisyquant"
    version = "1"
    summary = "NoisyQuant noisy-bias PTQ (calibrated dithering before rounding)."
    defaults = {"bits": 6, "seed": 0}

    def compress(self, tensor: np.ndarray, **params: Any) -> CompressionResult:
        from .. import quant

        tensor = as_weight_matrix(tensor)
        result = quant.noisyquant_quantize(
            tensor, bits=int(params["bits"]), seed=int(params["seed"])
        )
        return self._result(
            tensor,
            result.values,
            storage_bits=tensor.size * result.effective_bits(),
            params=params,
            payload=result,
            extras={"noise_amplitude": float(result.noise_amplitude)},
        )


@register_codec
class OliveCodec(Codec):
    name = "olive"
    version = "1"
    summary = "Olive outlier-victim pair quantization (extended-range outliers)."
    defaults = {"bits": 4, "outlier_percentile": 99.0}

    def compress(self, tensor: np.ndarray, **params: Any) -> CompressionResult:
        from .. import quant

        tensor = as_weight_matrix(tensor)
        result = quant.olive_quantize(
            tensor,
            bits=int(params["bits"]),
            outlier_percentile=float(params["outlier_percentile"]),
        )
        return self._result(
            tensor,
            result.values,
            storage_bits=tensor.size * result.effective_bits(),
            params=params,
            payload=result,
            extras={"outlier_fraction": float(result.outlier_fraction)},
        )


@register_codec
class PruneCodec(Codec):
    name = "prune"
    version = "1"
    summary = "BBS binary pruning (rounded-average / zero-point-shift columns)."
    defaults = {
        "bits": 8,
        "num_columns": 4,
        "strategy": "zero_point_shift",
        "group_size": 32,
    }

    def compress(self, tensor: np.ndarray, **params: Any) -> CompressionResult:
        from ..core import PruningStrategy, prune_tensor

        tensor = as_weight_matrix(tensor)
        bits = int(params["bits"])
        codes, scales = _per_channel_codes(tensor, bits)
        pruned = prune_tensor(
            codes,
            int(params["num_columns"]),
            PruningStrategy(params["strategy"]),
            group_size=int(params["group_size"]),
            bits=bits,
        )
        reconstruction = _to_input_domain(pruned.values, scales)
        return self._result(
            tensor,
            reconstruction,
            storage_bits=pruned.storage_bits(),
            params=params,
            payload=(pruned, scales),
            extras={"compression_ratio": float(pruned.compression_ratio())},
        )

    def decompress(self, result: CompressionResult) -> np.ndarray:
        if result.payload is None:
            return super().decompress(result)
        pruned, scales = result.payload
        return _to_input_domain(pruned.values, scales)


@register_codec
class BitplaneCodec(Codec):
    name = "bitplane"
    version = "1"
    summary = (
        "Lossless bit-plane encoding: drops per-group redundant sign-extension "
        "columns (integer input reconstructs exactly)."
    )
    lossless = True
    defaults = {"bits": 8, "group_size": 32}

    def compress(self, tensor: np.ndarray, **params: Any) -> CompressionResult:
        from ..core.grouping import group_weights

        tensor = as_weight_matrix(tensor)
        bits = int(params["bits"])
        group_size = int(params["group_size"])
        codes, scales = _per_channel_codes(tensor, bits)
        grouped = group_weights(codes, group_size)

        # (channels, groups, group_size, bits) bit planes, MSB first.  A
        # column is redundant when it matches the sign column for every group
        # member; the droppable run is contiguous from the column after the
        # sign bit and capped by the 2-bit metadata field (never the LSB).
        planes = to_bitplanes(grouped.groups, bits)
        sign = planes[..., :1]
        matches_sign = np.all(planes[..., 1:] == sign, axis=2)  # (C, G, bits-1)
        run = np.cumprod(matches_sign[..., : bits - 2], axis=-1).sum(axis=-1)
        redundant = np.minimum(run, MAX_REDUNDANT_COLUMNS).astype(np.int64)

        per_group = np.where(
            redundant > 0,
            group_size * (bits - redundant) + METADATA_BITS,
            group_size * bits,
        )
        reconstruction = _to_input_domain(codes, scales)
        if scales is None:
            reconstruction = reconstruction.astype(tensor.dtype, copy=True)
        return self._result(
            tensor,
            reconstruction,
            storage_bits=int(per_group.sum()),
            params=params,
            payload=(codes, scales),
            extras={
                "redundant_columns": float(redundant.sum()),
                "compression_ratio": float(
                    grouped.groups.size * bits / per_group.sum()
                ),
            },
        )

    def decompress(self, result: CompressionResult) -> np.ndarray:
        if result.payload is None:
            return super().decompress(result)
        codes, scales = result.payload
        return _to_input_domain(codes, scales)
