"""Decorator-based codec registry: one plugin surface for every backend.

A codec registers itself with::

    from repro.codecs import Codec, register_codec

    @register_codec
    class MyCodec(Codec):
        name = "my_codec"
        version = "1"
        defaults = {"bits": 8}

        def compress(self, tensor, **params):
            ...

and is immediately discoverable everywhere: ``repro codec list``,
``GET /v1/codecs``, campaign ``codec:`` grids, and
:func:`run_codec`/:func:`get_codec` callers.  Adding a backend is a one-file
change instead of a five-site edit (registry scenario, campaign spec, CLI,
HTTP API, eval suite).

The registry maps names to codec *classes*; codecs are stateless, so
:func:`get_codec` returns a shared instance per class.
"""

from __future__ import annotations

import re
import threading
from typing import Any, Iterable, Mapping

import numpy as np

from .base import Codec, CodecError, CompressionResult

__all__ = [
    "codec_names",
    "describe_codecs",
    "get_codec",
    "register_codec",
    "run_codec",
    "unregister_codec",
]

_NAME_PATTERN = re.compile(r"[a-z][a-z0-9_]*")

_lock = threading.Lock()
_codecs: dict[str, type[Codec]] = {}
_instances: dict[str, Codec] = {}


def register_codec(cls: type[Codec]) -> type[Codec]:
    """Class decorator adding a :class:`Codec` subclass to the registry."""
    if not (isinstance(cls, type) and issubclass(cls, Codec)):
        raise CodecError(f"register_codec expects a Codec subclass, got {cls!r}")
    name = cls.name
    if not (isinstance(name, str) and _NAME_PATTERN.fullmatch(name)):
        raise CodecError(
            f"codec name must match {_NAME_PATTERN.pattern!r}, got {name!r}"
        )
    if not isinstance(cls.defaults, Mapping):
        raise CodecError(f"codec {name!r}: 'defaults' must be a mapping")
    with _lock:
        registered = _codecs.get(name)
        if registered is not None and registered is not cls:
            raise CodecError(f"codec {name!r} is already registered")
        _codecs[name] = cls
        _instances.pop(name, None)
    return cls


def unregister_codec(name: str) -> None:
    """Remove a codec (tests and example plugins clean up after themselves)."""
    with _lock:
        _codecs.pop(name, None)
        _instances.pop(name, None)


def codec_names() -> list[str]:
    """Sorted names of every registered codec."""
    _ensure_builtins()
    with _lock:
        return sorted(_codecs)


def get_codec(name: str) -> Codec:
    """Shared (stateless) instance of the codec registered under ``name``."""
    _ensure_builtins()
    with _lock:
        cls = _codecs.get(name)
        if cls is None:
            available = sorted(_codecs)
            raise CodecError(f"unknown codec {name!r}; available: {available}")
        instance = _instances.get(name)
        if instance is None or type(instance) is not cls:
            instance = cls()
            _instances[name] = instance
        return instance


def describe_codecs(names: Iterable[str] | None = None) -> list[dict]:
    """``param_schema()`` of every (or the named) codecs, sorted by name."""
    selected = codec_names() if names is None else sorted(names)
    return [get_codec(name).param_schema() for name in selected]


def run_codec(
    name: str, tensor: np.ndarray, params: Mapping[str, Any] | None = None
) -> CompressionResult:
    """Validate ``params`` against the codec's schema and compress ``tensor``.

    Runs through :meth:`Codec.instrumented_compress`, so every call emits a
    ``codec.compress`` trace span and a latency sample — the codec layer's
    contribution to the observability surface.
    """
    codec = get_codec(name)
    merged = codec.validate_params(params)
    return codec.instrumented_compress(tensor, **merged)


_builtins_loaded = False


def _ensure_builtins() -> None:
    """Import the built-in codec modules exactly once (they self-register).

    Safe without extra locking: the interpreter's import lock serializes the
    module imports, and ``register_codec`` itself takes ``_lock``.
    """
    global _builtins_loaded
    if _builtins_loaded:
        return
    from . import builtin, pipeline  # noqa: F401

    _builtins_loaded = True
