"""The ``Codec`` contract and the uniform ``CompressionResult`` it returns.

Every compression backend of this repository — the six ``repro.quant``
baselines, BBS binary pruning, and the lossless bit-plane encoding — has its
own entry-point function and result dataclass.  A :class:`Codec` wraps one of
them behind a single surface:

* ``compress(tensor, **params) -> CompressionResult`` — run the backend.
* ``decompress(result) -> np.ndarray`` — reconstruct the tensor from the
  stored artifact (``result.payload``); for the lossy backends this returns
  the reconstruction the backend produced, for the lossless ones it decodes.
* ``param_schema()`` — machine-readable parameter names, defaults, and types
  (the ``/v1/codecs`` discovery document).
* ``name`` / ``version`` — the identity used by the registry, the campaign
  engine, and the versioned service API.

:class:`CompressionResult` is deliberately uniform: reconstruction in the
input domain, total storage bits, the scalar-metric surface shared with every
legacy result dataclass (:class:`repro.core.metrics.ReconstructionMetricsMixin`),
and a provenance digest computed with :func:`repro.core.hashing.stable_digest`
so two compressions of identical inputs agree byte-for-byte on identity —
across processes and machines.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Mapping

import numpy as np

from ..core.hashing import stable_digest
from ..core.metrics import ReconstructionMetricsMixin
from ..obs.metrics import get_metrics
from ..obs.trace import span as _trace_span

#: Resolved once: the per-call get-or-create lookup (name/label validation)
#: is measurable against sub-millisecond codec compressions.
_COMPRESS_SECONDS = get_metrics().histogram(
    "repro_codec_compress_seconds",
    "Codec compress latency per codec (pipelines report as 'pipeline').",
    ("codec",),
)

__all__ = [
    "Codec",
    "CodecError",
    "CompressionResult",
    "StageMetrics",
]


class CodecError(ValueError):
    """A codec was misused: unknown name, bad parameters, or a bad pipeline."""


@dataclass(frozen=True)
class StageMetrics:
    """Scalar metrics of one stage of a :class:`~repro.codecs.PipelineCodec`.

    ``stage_mse`` measures the stage against *its own input* (the previous
    stage's reconstruction); ``cumulative_mse`` measures the stage's output
    against the pipeline's original input tensor.
    """

    codec: str
    version: str
    params: dict
    stage_mse: float
    cumulative_mse: float
    effective_bits: float
    storage_bits: float

    def to_jsonable(self) -> dict:
        return {
            "codec": self.codec,
            "version": self.version,
            "params": dict(self.params),
            "stage_mse": float(self.stage_mse),
            "cumulative_mse": float(self.cumulative_mse),
            "effective_bits": float(self.effective_bits),
            "storage_bits": float(self.storage_bits),
        }


@dataclass
class CompressionResult(ReconstructionMetricsMixin):
    """What every codec returns: reconstruction, footprint, metrics, identity.

    Attributes
    ----------
    codec / version:
        Identity of the codec that produced this result.
    params:
        The fully canonicalized parameters (defaults merged in).
    values:
        Reconstructed tensor in the input domain (``reconstruction`` is an
        alias; the field is named ``values`` to share the metric mixin with
        the legacy result dataclasses).
    storage_bits:
        Total stored bits of the compressed artifact (payload + metadata).
    payload:
        Backend-specific artifact (e.g. a ``PrunedTensor``); what
        ``decompress`` decodes.  Excluded from the digest and JSON forms.
    original:
        The input tensor (kept for MSE reporting), or ``None``.
    extras:
        Backend-specific scalar metrics (e.g. ``outlier_fraction``).
    stages:
        Per-stage metrics when the codec is a pipeline, else ``None``.
    """

    codec: str
    version: str
    params: dict
    values: np.ndarray
    storage_bits: float
    payload: Any = field(default=None, repr=False)
    original: np.ndarray | None = field(default=None, repr=False)
    extras: dict[str, float] = field(default_factory=dict)
    stages: list[StageMetrics] | None = None

    @property
    def reconstruction(self) -> np.ndarray:
        return self.values

    @property
    def shape(self) -> tuple[int, ...]:
        return tuple(self.values.shape)

    def effective_bits(self) -> float:
        """Average stored bits per weight."""
        size = int(self.values.size)
        if size == 0:
            return 0.0
        return float(self.storage_bits) / size

    def extra_scalars(self) -> dict[str, float]:
        return {"storage_bits": float(self.storage_bits), **self.extras}

    def digest(self) -> str:
        """Stable provenance digest of the compressed artifact.

        Covers the codec identity, canonical parameters, and the
        reconstruction; independent of process, dict order, and whether the
        ``original``/``payload`` were kept.
        """
        return stable_digest(
            "repro-codec-result",
            self.codec,
            self.version,
            dict(self.params),
            np.ascontiguousarray(self.values),
            float(self.storage_bits),
        )

    def to_jsonable(self) -> dict:
        """Strict-JSON record: identity, shape, metrics, digest, stage list."""
        record = {
            "codec": self.codec,
            "version": self.version,
            "params": _jsonable_params(self.params),
            "shape": list(self.values.shape),
            "digest": self.digest(),
            "metrics": super().to_jsonable(),
        }
        if self.stages is not None:
            record["stages"] = [stage.to_jsonable() for stage in self.stages]
        return record


def _jsonable_params(params: Mapping[str, Any]) -> dict:
    from ..eval.reporting import to_jsonable

    return {key: to_jsonable(value) for key, value in dict(params).items()}


class Codec:
    """Base class every codec derives from.

    Subclasses set the class attributes and implement ``compress``:

    * ``name`` — registry key (``[a-z0-9_]+``).
    * ``version`` — bumped on any change that alters results for identical
      inputs (the digest covers it, so caches roll over automatically).
    * ``summary`` — one line for discovery listings.
    * ``defaults`` — parameter name -> default value; the accepted parameter
      set (unknown parameters are rejected, exactly like the service
      registry's job types).

    Codecs are stateless: ``compress`` takes every knob as a keyword
    argument, so one instance can serve concurrent callers.
    """

    name: str = ""
    version: str = "1"
    summary: str = ""
    defaults: Mapping[str, Any] = {}
    #: Lossless codecs reconstruct bit-exactly (mse == 0 on integer input).
    lossless: bool = False

    def compress(self, tensor: np.ndarray, **params: Any) -> CompressionResult:
        raise NotImplementedError

    def instrumented_compress(
        self, tensor: np.ndarray, **params: Any
    ) -> CompressionResult:
        """``compress`` wrapped in a ``codec.compress`` trace span and the
        ``repro_codec_compress_seconds{codec}`` histogram.

        The one observed entry point for top-level compressions —
        :func:`~repro.codecs.registry.run_codec` routes through it — so the
        span joins whatever trace is active (an HTTP job, a campaign cell)
        and every backend is measured identically.  Pipeline *stages* are
        instrumented separately (``repro_pipeline_stage_seconds``) and call
        ``compress`` directly, so this histogram counts whole invocations,
        not inner stages twice.
        """
        start = time.perf_counter()
        try:
            with _trace_span("codec.compress", attrs={"codec": self.name}):
                return self.compress(tensor, **params)
        finally:
            _COMPRESS_SECONDS.observe(time.perf_counter() - start, codec=self.name)

    def decompress(self, result: CompressionResult) -> np.ndarray:
        """Reconstruct the tensor from ``result``'s stored artifact.

        The default decodes nothing: codecs whose payload *is* the
        reconstruction simply return it.  Codecs with a genuine encoded form
        override this to decode ``result.payload``.
        """
        if result.codec != self.name:
            raise CodecError(
                f"codec {self.name!r} cannot decompress a {result.codec!r} result"
            )
        return result.values

    @classmethod
    def param_schema(cls) -> dict:
        """Machine-readable description served by ``GET /v1/codecs``."""
        return {
            "name": cls.name,
            "version": cls.version,
            "summary": cls.summary,
            "lossless": cls.lossless,
            "params": {
                key: {
                    "default": default,
                    "type": type(default).__name__ if default is not None else "any",
                }
                for key, default in sorted(cls.defaults.items())
            },
        }

    @classmethod
    def validate_params(cls, params: Mapping[str, Any] | None) -> dict:
        """Merge ``params`` over the defaults, rejecting unknown names."""
        params = dict(params or {})
        unknown = sorted(set(params) - set(cls.defaults))
        if unknown:
            raise CodecError(
                f"unknown parameter(s) {unknown} for codec {cls.name!r}; "
                f"accepted: {sorted(cls.defaults)}"
            )
        return {**cls.defaults, **params}

    # ------------------------------------------------------------------ #
    # Shared helpers for building results
    # ------------------------------------------------------------------ #

    def _result(
        self,
        tensor: np.ndarray,
        reconstruction: np.ndarray,
        storage_bits: float,
        params: Mapping[str, Any],
        payload: Any = None,
        extras: Mapping[str, float] | None = None,
        stages: list[StageMetrics] | None = None,
    ) -> CompressionResult:
        return CompressionResult(
            codec=self.name,
            version=self.version,
            params=dict(params),
            values=reconstruction,
            storage_bits=float(storage_bits),
            payload=payload,
            original=np.asarray(tensor),
            extras=dict(extras or {}),
            stages=stages,
        )


def as_weight_matrix(tensor: Any) -> np.ndarray:
    """Validate codec input: a 2-D ``(channels, reduction)`` numeric matrix."""
    tensor = np.asarray(tensor)
    if tensor.ndim != 2:
        raise CodecError(f"expected a 2-D (channels, reduction) matrix, got {tensor.shape}")
    if tensor.size == 0:
        raise CodecError("cannot compress an empty tensor")
    if not (
        np.issubdtype(tensor.dtype, np.integer)
        or np.issubdtype(tensor.dtype, np.floating)
    ):
        raise CodecError(f"expected a numeric matrix, got dtype {tensor.dtype}")
    return tensor


__all__ += ["as_weight_matrix"]
