"""One composable Codec API for every compression backend.

The paper compares many compression schemes (PTQ, ANT, Olive, NoisyQuant,
microscaling, bit-flip pruning, BBS binary pruning, bit-plane encoding); this
package gives them one plugin surface:

* :mod:`repro.codecs.base` — the :class:`Codec` contract and the uniform
  :class:`CompressionResult` (reconstruction, storage bits, scalar metrics,
  provenance digest).
* :mod:`repro.codecs.registry` — decorator-based discovery
  (:func:`register_codec`, :func:`get_codec`, :func:`run_codec`).
* :mod:`repro.codecs.builtin` — the six ``repro.quant`` backends plus BBS
  pruning and lossless bit-plane encoding as first-class codecs.
* :mod:`repro.codecs.pipeline` — the ``pipeline`` codec chaining codecs
  (e.g. prune -> quantize -> encode) with per-stage metrics.

Everything downstream — the service's ``codec_compress`` scenario and
``/v1/codecs`` + ``/v1/compress`` endpoints, campaign ``codec:``/
``pipeline:`` grids, and the ``repro codec`` CLI — is a thin view over this
registry, so a new backend is one ``@register_codec`` class away from being
sweepable, servable, and cacheable (see ``examples/custom_codec.py``).
"""

from .base import (
    Codec,
    CodecError,
    CompressionResult,
    StageMetrics,
    as_weight_matrix,
)
from .pipeline import PipelineCodec, validate_stages
from .registry import (
    codec_names,
    describe_codecs,
    get_codec,
    register_codec,
    run_codec,
    unregister_codec,
)

#: Parameters of the service's ``codec_compress`` scenario that describe the
#: synthetic tensor source rather than the codec; campaign ``codec:`` grids
#: keep these at the top level and fold everything else into codec params.
TENSOR_SOURCE_PARAMS = ("rows", "cols", "seed", "scale")

__all__ = [
    "Codec",
    "CodecError",
    "CompressionResult",
    "PipelineCodec",
    "StageMetrics",
    "TENSOR_SOURCE_PARAMS",
    "as_weight_matrix",
    "codec_names",
    "describe_codecs",
    "get_codec",
    "register_codec",
    "run_codec",
    "unregister_codec",
    "validate_stages",
]
