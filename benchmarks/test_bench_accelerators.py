"""Benchmarks regenerating the accelerator-level results.

Covers Figure 12 (speedup over Stripes), Figure 13 (energy normalized to
SparTen), Figure 14 (load balance vs PE columns), Figure 15 (stall breakdown),
Tables IV/V/VI (PE area/power), Figure 16 (EDP-accuracy Pareto) and Figure 17
(LLM weight compression).
"""

from __future__ import annotations

import pytest

from repro.eval import experiments as exp
from repro.eval.reporting import format_table


@pytest.fixture(scope="module")
def sweep_results(suite, sweep_models):
    """Figure 12 results shared with the Figure 13 benchmark."""
    return exp.figure12_speedup(models=sweep_models, suite=suite)


@pytest.mark.paper
def test_figure12_speedup(benchmark, suite, sweep_models, sweep_results):
    def regenerate():
        return sweep_results

    result = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    print()
    print(result["table"])
    geomean = [row for row in result["rows"] if row["model"] == "Geomean"][0]
    assert geomean["BitVert (moderate)"] > geomean["BitVert (conservative)"]
    assert geomean["BitVert (conservative)"] > geomean["BitWave"] > 1.0
    assert geomean["BitVert (moderate)"] > 2.0


@pytest.mark.paper
def test_figure13_energy(benchmark, suite, sweep_models, sweep_results):
    result = benchmark.pedantic(
        exp.figure13_energy,
        kwargs={"models": sweep_models, "suite": suite, "results": sweep_results["results"]},
        rounds=1,
        iterations=1,
    )
    print()
    geomeans = [row for row in result["rows"] if row["model"] == "Geomean"]
    print(format_table(geomeans, title="Figure 13 (geomean, normalized to SparTen)"))
    by_accel = {row["accelerator"]: row["norm_energy"] for row in geomeans}
    assert by_accel["SparTen"] == pytest.approx(1.0)
    assert by_accel["BitVert (moderate)"] < by_accel["BitWave"] < by_accel["Stripes"]


@pytest.mark.paper
def test_figure14_load_balance(benchmark, suite):
    result = benchmark.pedantic(
        exp.figure14_load_balance, kwargs={"suite": suite}, rounds=1, iterations=1
    )
    print()
    print(result["table"])
    for model in {row["model"] for row in result["rows"]}:
        subset = sorted(
            (row for row in result["rows"] if row["model"] == model),
            key=lambda row: row["pe_columns"],
        )
        # Unstructured designs lose speedup with more PE columns; BitVert wins everywhere.
        assert subset[-1]["Bitlet"] <= subset[0]["Bitlet"] + 1e-9
        assert subset[-1]["Pragmatic"] <= subset[0]["Pragmatic"] + 1e-9
        for row in subset:
            assert row["BitVert"] >= row["BitWave"]


@pytest.mark.paper
def test_figure15_stall_breakdown(benchmark, suite):
    result = benchmark.pedantic(
        exp.figure15_stall_breakdown, kwargs={"suite": suite}, rounds=1, iterations=1
    )
    print()
    print(result["table"])
    for model in {row["model"] for row in result["rows"]}:
        for columns in {row["pe_columns"] for row in result["rows"]}:
            subset = {
                row["accelerator"]: row
                for row in result["rows"]
                if row["model"] == model and row["pe_columns"] == columns
            }
            assert subset["BitVert"]["useful"] >= subset["BitWave"]["useful"]


@pytest.mark.paper
def test_table4_pe_design_space(benchmark):
    result = benchmark.pedantic(exp.table4_pe_design_space, rounds=1, iterations=1)
    print()
    print(result["table"])
    areas = {
        (row["sub_group"], row["optimized"]): row["model_area_um2"] for row in result["rows"]
    }
    assert min(areas, key=areas.get) == (8, True)


@pytest.mark.paper
def test_table5_pe_comparison(benchmark):
    result = benchmark.pedantic(exp.table5_pe_comparison, rounds=1, iterations=1)
    print()
    print(result["table"])
    by_name = {row["accelerator"]: row for row in result["rows"]}
    assert by_name["Bitlet"]["model_area_um2"] > by_name["Pragmatic"]["model_area_um2"]
    assert by_name["Stripes"]["model_area_um2"] < by_name["BitVert"]["model_area_um2"]


@pytest.mark.paper
def test_table6_olive_pe(benchmark):
    result = benchmark.pedantic(exp.table6_olive_pe, rounds=1, iterations=1)
    print()
    print(result["table"])
    bitvert = [row for row in result["rows"] if row["pe"].startswith("BitVert")][0]
    assert bitvert["norm_perf_per_area"] > 1.2


@pytest.mark.paper
def test_figure16_pareto(benchmark, suite):
    result = benchmark.pedantic(
        exp.figure16_pareto, kwargs={"suite": suite}, rounds=1, iterations=1
    )
    print()
    print(result["table"])
    bitvert_rows = [row for row in result["rows"] if row["design"].startswith("BitVert")]
    others = [row for row in result["rows"] if not row["design"].startswith("BitVert")]
    assert any(
        row["norm_edp"] < min(other["norm_edp"] for other in others) for row in bitvert_rows
    )


@pytest.mark.paper
def test_figure17_llm(benchmark):
    result = benchmark.pedantic(exp.figure17_llm, rounds=1, iterations=1)
    print()
    print(result["table"])
    by_method = {row["method"]: row for row in result["rows"]}
    assert (
        by_method["BBS moderate (4.25 bits)"]["output_distortion"]
        < by_method["Olive (4 bits)"]["output_distortion"]
    )
