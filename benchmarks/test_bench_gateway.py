"""Benchmark: what the gateway front door costs per request.

Measures the cached-submission hot path twice — straight to a ``repro
serve`` node and through a ``repro gateway`` fronting that same node — so
the difference is exactly the control-plane tax: canonicalize + digest,
hash-ring routing, the replica-journal submit record, quota accounting, and
one extra HTTP hop.  CI exports both timings into ``BENCH_kernels.json``
(perf-regression gated), and the overhead test bounds the tax directly so a
quadratic ring lookup or an accidental fsync on the proxy path fails the
suite rather than shipping.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.eval.reporting import format_table
from repro.gateway import GatewayAgent, create_gateway
from repro.service import create_server
from repro.service.client import ServiceClient

#: The benchmarked submission: small enough that the cold run is instant,
#: so every timed request is a result-cache hit and the measurement is
#: pure request-path overhead.
JOB = {"type": "quantize_tensor", "params": {"rows": 16, "cols": 32}}


@pytest.fixture(scope="module")
def fabric():
    """One gateway fronting one in-process node, both warmed up."""
    gateway = create_gateway(
        port=0, suspect_after=5.0, dead_after=60.0, sweep_interval=1.0
    )
    threading.Thread(target=gateway.serve_forever, daemon=True).start()
    gateway_url = f"http://127.0.0.1:{gateway.port}"
    server = create_server(port=0, max_workers=2)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    node_url = f"http://127.0.0.1:{server.port}"
    agent = GatewayAgent(gateway_url, node_url, server, heartbeat_interval=0.5)
    agent.start()

    # Warm the node's result cache so the timed path never recomputes.
    node_client = ServiceClient(node_url, timeout=30.0)
    record = node_client.submit(JOB["type"], JOB["params"], wait=60.0)
    assert record["state"] == "done", record

    yield gateway_url, node_url
    agent.stop()
    server.close()
    gateway.close()


def _submit_cached(client: ServiceClient) -> None:
    record = client.request("POST", "/v1/jobs", JOB)
    assert record.get("cache_hit") is True, record


def test_bench_node_submit_cached(benchmark, fabric):
    _, node_url = fabric
    client = ServiceClient(node_url, timeout=30.0)
    benchmark(_submit_cached, client)


def test_bench_gateway_submit_cached(benchmark, fabric):
    gateway_url, _ = fabric
    client = ServiceClient(gateway_url, timeout=30.0)
    benchmark(_submit_cached, client)


def test_gateway_routing_overhead_is_bounded(fabric):
    """The per-request control-plane tax stays within an order of magnitude.

    Compares mean cached-submit latency through the gateway against the
    direct node path over the same connectionless client.  The bound is
    deliberately loose (10x + 50 ms absolute) — it absorbs CI-runner noise
    while still catching a structural slip like routing work growing with
    ring size or the replica journal fsyncing per request.
    """
    gateway_url, node_url = fabric
    rounds = 30

    def mean_seconds(url: str) -> float:
        client = ServiceClient(url, timeout=30.0)
        _submit_cached(client)  # connection/codepath warm-up, untimed
        start = time.perf_counter()
        for _ in range(rounds):
            _submit_cached(client)
        return (time.perf_counter() - start) / rounds

    direct = mean_seconds(node_url)
    via_gateway = mean_seconds(gateway_url)
    overhead = via_gateway - direct

    print()
    print(
        format_table(
            [
                {
                    "path": "node direct",
                    "mean_ms": direct * 1000,
                },
                {
                    "path": "via gateway",
                    "mean_ms": via_gateway * 1000,
                },
                {
                    "path": "overhead",
                    "mean_ms": overhead * 1000,
                },
            ],
            title="Gateway front-door tax (cached submit)",
        )
    )
    assert via_gateway <= direct * 10 + 0.050, (
        f"gateway tax too high: direct {direct*1000:.2f}ms, "
        f"via gateway {via_gateway*1000:.2f}ms"
    )
