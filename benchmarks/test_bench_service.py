"""Benchmark: cold vs. cached latency of the compression service.

Measures the hot path the service layer exists for: the first (cold)
submission of a job pays the full computation, while every identical
resubmission is a content-hash cache lookup.  Records the measured speedup
and asserts the cached path is at least an order of magnitude faster.
"""

from __future__ import annotations

import time

from repro.eval.reporting import format_table
from repro.service import JobState, ResultCache, WorkerPool, build_default_registry

#: Jobs timed in the cold/cached comparison: one ad-hoc compression job and
#: one paper experiment, both comfortably sub-minute cold.
TIMED_JOBS = [
    ("prune_tensor", {"rows": 256, "cols": 2048, "num_columns": 4, "beta": 0.1}),
    ("figure1", {"seed": 0}),
]


def _timed_run(pool: WorkerPool, job_type: str, params: dict) -> tuple[float, object]:
    start = time.perf_counter()
    job = pool.run(job_type, params, timeout=600)
    elapsed = time.perf_counter() - start
    assert job.state is JobState.DONE, job.error
    return elapsed, job


def test_cached_resubmission_is_10x_faster():
    rows = []
    with WorkerPool(build_default_registry(), cache=ResultCache(), max_workers=2) as pool:
        for job_type, params in TIMED_JOBS:
            cold_seconds, cold_job = _timed_run(pool, job_type, params)
            cached_seconds, cached_job = _timed_run(pool, job_type, params)

            assert not cold_job.cache_hit
            assert cached_job.cache_hit
            assert cached_job.result == cold_job.result

            speedup = cold_seconds / cached_seconds if cached_seconds else float("inf")
            rows.append(
                {
                    "job": job_type,
                    "cold_seconds": cold_seconds,
                    "cached_seconds": cached_seconds,
                    "speedup": speedup,
                }
            )

    print()
    print(format_table(rows, title="Service cache: cold vs. cached job latency"))
    for row in rows:
        assert row["speedup"] >= 10.0, (
            f"cached {row['job']} only {row['speedup']:.1f}x faster "
            f"({row['cold_seconds']:.3f}s -> {row['cached_seconds']:.3f}s)"
        )
