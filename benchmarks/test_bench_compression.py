"""Benchmarks regenerating the compression-quality results.

Covers Figure 1 (motivation), Figure 3 (sparsity statistics), Figure 6
(KL divergence of the pruning strategies), Figure 11 / Tables II-III
(accuracy-proxy comparisons) and Table I (benchmark summary).  Each benchmark
prints the regenerated rows so ``bench_output.txt`` contains the same series
the paper reports.
"""

from __future__ import annotations

import pytest

from repro.eval import experiments as exp


def _run_and_print(benchmark, function, *args, **kwargs):
    result = benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)
    print()
    print(result["table"])
    return result


@pytest.mark.paper
def test_figure1_motivation(benchmark):
    result = _run_and_print(benchmark, exp.figure1_motivation)
    by_method = {row["method"]: row for row in result["rows"]}
    bbs = [row for name, row in by_method.items() if name.startswith("BBS")][0]
    assert bbs["kl_divergence"] == min(row["kl_divergence"] for row in result["rows"])


@pytest.mark.paper
def test_figure3_sparsity(benchmark):
    result = _run_and_print(benchmark, exp.figure3_sparsity_comparison)
    for row in result["rows"]:
        assert row["bbs"] >= 0.5
        assert row["value"] < 0.1


@pytest.mark.paper
def test_figure6_kl_divergence(benchmark):
    result = _run_and_print(benchmark, exp.figure6_kl_divergence)
    for row in result["rows"]:
        assert row["zero_point_shift_norm_kl"] < row["zero_column_norm_kl"]
        assert row["rounded_average_norm_kl"] < row["zero_column_norm_kl"]


@pytest.mark.paper
def test_table1_models(benchmark):
    result = _run_and_print(benchmark, exp.table1_models)
    assert len(result["rows"]) == 7


@pytest.mark.paper
def test_figure11_accuracy(benchmark):
    result = _run_and_print(benchmark, exp.figure11_accuracy)
    models = {row["model"] for row in result["rows"]}
    for model in models:
        subset = {row["method"]: row for row in result["rows"] if row["model"] == model}
        assert subset["bbs_mod"]["mean_kl"] < subset["ptq4"]["mean_kl"]
        assert subset["bbs_mod"]["mean_kl"] < subset["bitwave4"]["mean_kl"]
    if result["mlp_rows"]:
        by_method = {row["method"]: row for row in result["mlp_rows"]}
        assert (
            by_method["BBS moderate"]["accuracy_loss_vs_fp32"]
            <= by_method["PTQ (4-bit)"]["accuracy_loss_vs_fp32"] + 1e-9
        )


@pytest.mark.paper
def test_table2_ant(benchmark):
    result = _run_and_print(benchmark, exp.table2_ant_comparison)
    assert all(row["bbs_better"] for row in result["rows"])


@pytest.mark.paper
def test_table3_ptq(benchmark):
    result = _run_and_print(benchmark, exp.table3_ptq_comparison)
    for model in ("ViT-Small", "ViT-Base"):
        subset = {row["method"]: row for row in result["rows"] if row["model"] == model}
        assert subset["BBS (mod)"]["mean_kl"] < subset["Microscaling (6-bit)"]["mean_kl"]
