"""Micro-benchmarks of the core BBS kernels.

These are not tied to a specific paper figure; they measure the throughput of
the compression algorithms themselves (the paper quotes ~15 s to compress all
of ResNet-50 on a GPU — the vectorized numpy implementation here compresses
the sampled layers in seconds on a CPU) and guard against performance
regressions in the hot loops used by every experiment.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    MODERATE_PRESET,
    PruningStrategy,
    bbs_sparsity,
    global_binary_prune,
    prune_tensor,
    sparsity_report,
)
from repro.core.rounded_average import rounded_average_groups
from repro.core.zero_point_shift import zero_point_shift_groups
from repro.quant.bitflip import bitflip_tensor


@pytest.fixture(scope="module")
def weight_matrix() -> np.ndarray:
    rng = np.random.default_rng(0)
    return np.clip(np.round(rng.normal(0, 24, (256, 1024))), -128, 127).astype(np.int64)


@pytest.fixture(scope="module")
def weight_groups(weight_matrix) -> np.ndarray:
    return weight_matrix.reshape(-1, 32)


def test_bench_sparsity_report(benchmark, weight_matrix):
    report = benchmark(sparsity_report, weight_matrix)
    assert report.bbs >= 0.5


def test_bench_bbs_sparsity(benchmark, weight_matrix):
    value = benchmark(bbs_sparsity, weight_matrix)
    assert value >= 0.5


def test_bench_rounded_average(benchmark, weight_groups):
    values, _, _, _ = benchmark(rounded_average_groups, weight_groups, 2)
    assert values.shape == weight_groups.shape


def test_bench_zero_point_shift(benchmark, weight_groups):
    values, _, _, _ = benchmark(zero_point_shift_groups, weight_groups, 4)
    assert values.shape == weight_groups.shape


def test_bench_prune_tensor_moderate(benchmark, weight_matrix):
    result = benchmark(
        prune_tensor, weight_matrix, 4, PruningStrategy.ZERO_POINT_SHIFT, 32, 8, None, False
    )
    assert result.effective_bits() == pytest.approx(4.25)


def test_bench_bitflip_tensor(benchmark, weight_matrix):
    result = benchmark(bitflip_tensor, weight_matrix, 3)
    assert result.values.shape == weight_matrix.shape


def test_bench_global_pruning(benchmark, weight_matrix):
    layers = {"a": weight_matrix[:128], "b": weight_matrix[128:]}
    scores = {name: np.abs(values).max(axis=1).astype(float) for name, values in layers.items()}
    result = benchmark.pedantic(
        global_binary_prune, args=(layers, scores, MODERATE_PRESET), rounds=1, iterations=1
    )
    assert result.compression_ratio() > 1.3
