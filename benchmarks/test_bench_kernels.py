"""Micro-benchmarks of the core BBS kernels.

These are not tied to a specific paper figure; they measure the throughput of
the compression algorithms themselves (the paper quotes ~15 s to compress all
of ResNet-50 on a GPU — the vectorized numpy implementation here compresses
the sampled layers in seconds on a CPU) and guard against performance
regressions in the hot loops used by every experiment.

The kernel benchmarks run with the artifact memo suspended so they always
measure the cold computation; the suite-level benchmarks at the bottom
measure the cold-vs-memoized contrast explicitly.  CI exports this module's
timings as ``BENCH_kernels.json`` (pytest-benchmark ``--benchmark-json``) and
uploads them as a workflow artifact, giving future PRs a perf trajectory; the
committed ``BENCH_kernels.json`` is the baseline recorded for this PR.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core import (
    MODERATE_PRESET,
    PruningStrategy,
    bbs_sparsity,
    clear_memo,
    global_binary_prune,
    memo_disabled,
    prune_tensor,
    sparsity_report,
)
from repro.core.rounded_average import rounded_average_groups
from repro.core.zero_point_shift import (
    zero_point_shift_groups,
    zero_point_shift_groups_reference,
)
from repro.eval.experiments import figure6_kl_divergence
from repro.quant.bitflip import bitflip_tensor


@pytest.fixture(scope="module")
def weight_matrix() -> np.ndarray:
    rng = np.random.default_rng(0)
    return np.clip(np.round(rng.normal(0, 24, (256, 1024))), -128, 127).astype(np.int64)


@pytest.fixture(scope="module")
def weight_groups(weight_matrix) -> np.ndarray:
    return weight_matrix.reshape(-1, 32)


def test_bench_sparsity_report(benchmark, weight_matrix):
    report = benchmark(sparsity_report, weight_matrix)
    assert report.bbs >= 0.5


def test_bench_bbs_sparsity(benchmark, weight_matrix):
    value = benchmark(bbs_sparsity, weight_matrix)
    assert value >= 0.5


def test_bench_rounded_average(benchmark, weight_groups):
    values, _, _, _ = benchmark(rounded_average_groups, weight_groups, 2)
    assert values.shape == weight_groups.shape


def test_bench_zero_point_shift(benchmark, weight_groups):
    values, _, _, _ = benchmark(zero_point_shift_groups, weight_groups, 4)
    assert values.shape == weight_groups.shape


def test_bench_zero_point_shift_reference(benchmark, weight_groups):
    """The original per-candidate search, kept on the record for trajectory."""
    values, _, _, _ = benchmark.pedantic(
        zero_point_shift_groups_reference, args=(weight_groups, 4), rounds=2, iterations=1
    )
    assert values.shape == weight_groups.shape


def test_zero_point_shift_speedup_over_reference(weight_groups):
    """Regression guard for the batched search (measured ~6x on this fixture).

    Timings are interleaved (reference, fast, reference, fast, ...) and the
    minimum of each is compared, so a load spike on a shared CI machine hits
    both sides alike.  The assertion is a parity guard only — far below the
    ~6x observed — because a wall-clock ratio can never be made fully
    deterministic on shared runners; the real trajectory lives in
    ``BENCH_kernels.json``.
    """
    reference_times, fast_times = [], []
    for _ in range(3):
        start = time.perf_counter()
        zero_point_shift_groups_reference(weight_groups, 4)
        reference_times.append(time.perf_counter() - start)
        start = time.perf_counter()
        zero_point_shift_groups(weight_groups, 4)
        fast_times.append(time.perf_counter() - start)
    speedup = min(reference_times) / min(fast_times)
    print(f"\nzero_point_shift_groups speedup over reference: {speedup:.1f}x")
    assert speedup >= 1.5
    for new, old in zip(
        zero_point_shift_groups(weight_groups, 4),
        zero_point_shift_groups_reference(weight_groups, 4),
        strict=True,
    ):
        assert np.array_equal(new, old)


def test_bench_prune_tensor_moderate(benchmark, weight_matrix):
    with memo_disabled():
        result = benchmark(
            prune_tensor, weight_matrix, 4, PruningStrategy.ZERO_POINT_SHIFT, 32, 8, None, False
        )
    assert result.effective_bits() == pytest.approx(4.25)


def test_bench_prune_tensor_memoized(benchmark, weight_matrix):
    """The same compression served from the artifact memo (hash + copy)."""
    clear_memo()
    prune_tensor(weight_matrix, 4, PruningStrategy.ZERO_POINT_SHIFT, keep_original=False)
    result = benchmark(
        prune_tensor, weight_matrix, 4, PruningStrategy.ZERO_POINT_SHIFT, 32, 8, None, False
    )
    assert result.effective_bits() == pytest.approx(4.25)


def test_bench_bitflip_tensor(benchmark, weight_matrix):
    result = benchmark(bitflip_tensor, weight_matrix, 3)
    assert result.values.shape == weight_matrix.shape


def test_bench_global_pruning(benchmark, weight_matrix):
    layers = {"a": weight_matrix[:128], "b": weight_matrix[128:]}
    scores = {name: np.abs(values).max(axis=1).astype(float) for name, values in layers.items()}
    with memo_disabled():
        result = benchmark.pedantic(
            global_binary_prune, args=(layers, scores, MODERATE_PRESET), rounds=1, iterations=1
        )
    assert result.compression_ratio() > 1.3


# --------------------------------------------------------------------------- #
# Suite-level wall clock: what a whole experiment costs cold vs memoized
# --------------------------------------------------------------------------- #


def test_bench_experiment_cold(benchmark):
    """Figure 6 from scratch: synthesis + every compression, memo cleared."""

    def cold():
        clear_memo()
        return figure6_kl_divergence(seed=0)

    result = benchmark.pedantic(cold, rounds=1, iterations=1)
    assert result["rows"]


def test_bench_experiment_memoized(benchmark):
    """Figure 6 again in the same process: every artifact is a memo hit."""
    clear_memo()
    figure6_kl_divergence(seed=0)
    result = benchmark.pedantic(
        figure6_kl_divergence, kwargs={"seed": 0}, rounds=2, iterations=1
    )
    assert result["rows"]
