"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one table or figure of the paper.  The heavyweight
inputs (the benchmark suite with synthetic weights) are session-scoped so that
``pytest benchmarks/ --benchmark-only`` runs the whole evaluation once.

Environment knobs:

* ``REPRO_BENCH_FULL=1`` — run the accelerator sweeps over all seven models
  (default: a three-model representative subset, which keeps the full harness
  under ~10 minutes).
"""

from __future__ import annotations

import os

import pytest

from repro.eval.benchmarks import BENCHMARK_MODEL_NAMES, BenchmarkSuite


def pytest_configure(config):
    config.addinivalue_line("markers", "paper: benchmark regenerating a paper table/figure")


@pytest.fixture(scope="session")
def suite() -> BenchmarkSuite:
    return BenchmarkSuite(seed=0, max_channels=128, max_reduction=1024)


@pytest.fixture(scope="session")
def sweep_models() -> list[str]:
    if os.environ.get("REPRO_BENCH_FULL", "0") == "1":
        return list(BENCHMARK_MODEL_NAMES)
    return ["ResNet-50", "ViT-Small", "BERT-MRPC"]
