"""Ablation benchmarks for the design choices DESIGN.md calls out.

These do not correspond to a specific paper figure; they regenerate the
trade-off curves behind the paper's fixed hyper-parameters (group size 32,
6-bit BBS constant, 10 %/20 % sensitive channels, PE sub-group 8, CH = 32).
"""

from __future__ import annotations

import pytest

from repro.eval.ablations import (
    beta_ablation,
    channel_alignment_ablation,
    constant_bits_ablation,
    group_size_ablation,
    sub_group_ablation,
)


def _print(result):
    print()
    print(result["table"])
    return result


@pytest.mark.paper
def test_ablation_group_size(benchmark):
    result = _print(benchmark.pedantic(group_size_ablation, rounds=1, iterations=1))
    bits = [row["effective_bits"] for row in result["rows"]]
    assert bits == sorted(bits, reverse=True)


@pytest.mark.paper
def test_ablation_constant_bits(benchmark):
    result = _print(benchmark.pedantic(constant_bits_ablation, rounds=1, iterations=1))
    errors = [row["mse"] for row in result["rows"]]
    assert errors[-1] <= errors[0] + 1e-9


@pytest.mark.paper
def test_ablation_beta(benchmark):
    result = _print(benchmark.pedantic(beta_ablation, rounds=1, iterations=1))
    rows = sorted(result["rows"], key=lambda row: row["beta"])
    assert rows[-1]["mse"] <= rows[0]["mse"] + 1e-9


@pytest.mark.paper
def test_ablation_sub_group(benchmark):
    result = _print(benchmark.pedantic(sub_group_ablation, rounds=1, iterations=1))
    optimized = {row["sub_group"]: row["area_um2"] for row in result["rows"] if row["optimized"]}
    assert min(optimized, key=optimized.get) == 8


@pytest.mark.paper
def test_ablation_channel_alignment(benchmark):
    result = _print(benchmark.pedantic(channel_alignment_ablation, rounds=1, iterations=1))
    for row in result["rows"]:
        assert row["aligned_fraction"] >= row["unaligned_fraction"] - 1e-9
