#!/usr/bin/env python
"""Whole-model compression study: ResNet-50 under every method of the paper.

Reproduces the workflow behind Figure 11 / Tables II-III on one model:
synthesize statistically realistic INT8 weights for every ResNet-50 layer,
compress them with naive PTQ, BitWave-style zero-column pruning, Microscaling,
ANT, and BBS binary pruning (conservative and moderate), and compare the
effective bit width, compression ratio, and how well each method preserves the
original weight distribution (MSE and KL divergence).

Run with::

    python examples/compress_resnet50.py
"""

from __future__ import annotations

import numpy as np

from repro.core import (
    CONSERVATIVE_PRESET,
    MODERATE_PRESET,
    global_binary_prune,
    kl_divergence,
    mse,
)
from repro.eval.reporting import format_table
from repro.nn import get_model, synthesize_model
from repro.quant import (
    ant_quantize,
    bitflip_tensor,
    microscaling_quantize,
    requantize_to_lower_bits,
)


def main() -> None:
    model = get_model("ResNet-50")
    print(model.describe())
    weights = synthesize_model(model, seed=0, max_channels=128, max_reduction=1024)
    print(f"synthesized {len(weights)} unique weight layers\n")

    rows = []

    # --- BBS global binary pruning (the paper's method) -----------------------
    layer_ints = {name: lw.int_weights for name, lw in weights.items()}
    scores = {name: lw.channel_scores for name, lw in weights.items()}
    for preset in (CONSERVATIVE_PRESET, MODERATE_PRESET):
        result = global_binary_prune(layer_ints, scores, preset)
        rows.append(
            {
                "method": f"BBS ({preset.name})",
                "effective_bits": result.effective_bits(),
                "compression": result.compression_ratio(),
                "mean_mse": result.mean_mse(),
                "mean_kl": result.mean_kl_divergence(),
            }
        )

    # --- Baselines -------------------------------------------------------------
    def evaluate(name: str, compress) -> None:
        kls, errors, bits = [], [], []
        for layer in weights.values():
            original = layer.int_weights
            compressed, effective_bits = compress(layer)
            kls.append(kl_divergence(original, compressed))
            errors.append(mse(original, compressed))
            bits.append(effective_bits)
        rows.append(
            {
                "method": name,
                "effective_bits": float(np.mean(bits)),
                "compression": 8.0 / float(np.mean(bits)),
                "mean_mse": float(np.mean(errors)),
                "mean_kl": float(np.mean(kls)),
            }
        )

    evaluate(
        "PTQ (4-bit)",
        lambda layer: (requantize_to_lower_bits(layer.quantized, 4).values, 4.0),
    )
    evaluate(
        "PTQ (5-bit)",
        lambda layer: (requantize_to_lower_bits(layer.quantized, 5).values, 5.0),
    )
    evaluate(
        "BitWave (4 columns)",
        lambda layer: (
            bitflip_tensor(layer.int_weights, 4, keep_original=False).values,
            (4 * 32 + 8) / 32,
        ),
    )
    evaluate(
        "Microscaling (6-bit)",
        lambda layer: (
            microscaling_quantize(layer.int_weights, 6, 32, keep_original=False).values,
            6.25,
        ),
    )
    evaluate(
        "ANT (6-bit)",
        lambda layer: (ant_quantize(layer.int_weights, 6, keep_original=False).values, 6.0),
    )

    rows.sort(key=lambda row: row["mean_kl"])
    print(format_table(rows, title="ResNet-50 weight compression (sorted by KL divergence)"))
    print(
        "Lower KL divergence means the compressed weights preserve more of the\n"
        "8-bit baseline's statistical structure — the property the paper links\n"
        "to post-compression accuracy (Figures 6 and 11)."
    )


if __name__ == "__main__":
    main()
