#!/usr/bin/env python
"""Quickstart: BBS binary pruning of a single weight matrix.

This example walks through the paper's core algorithm on one tensor:

1. start from a per-channel quantized INT8 weight matrix,
2. measure its value, bit, and bi-directional bit sparsity (Figure 3),
3. apply both binary-pruning strategies (Figures 4/5) at the paper's
   conservative and moderate settings,
4. show the compression ratio, the reconstruction error, and — via the BBS
   dot-product identity — that the compressed representation computes exact
   dot products.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.core import (
    PruningStrategy,
    bbs_dot_product,
    compressed_dot_product,
    decode_group,
    encode_group,
    prune_group,
    prune_tensor,
    sparsity_report,
)
from repro.quant import quantize_per_channel


def main() -> None:
    rng = np.random.default_rng(0)

    # A synthetic "layer": 128 output channels x 512 inputs of Gaussian weights
    # with a few outlier channels, quantized per channel to INT8.
    float_weights = rng.normal(0.0, 0.02, size=(128, 512))
    float_weights[:6] *= 5.0
    quantized = quantize_per_channel(float_weights, bits=8)
    weights = quantized.values

    print("=== Sparsity of the INT8 weights (Figure 3 view) ===")
    report = sparsity_report(weights)
    for name, value in report.as_dict().items():
        print(f"  {name:24s} {value:6.3f}")
    print()

    print("=== Binary pruning (Figures 4/5) ===")
    for label, columns, strategy in [
        ("conservative (2 columns, rounded averaging)", 2, PruningStrategy.ROUNDED_AVERAGE),
        ("moderate     (4 columns, zero-point shift) ", 4, PruningStrategy.ZERO_POINT_SHIFT),
    ]:
        pruned = prune_tensor(weights, columns, strategy)
        print(
            f"  {label}: {pruned.effective_bits():.2f} bits/weight, "
            f"{pruned.compression_ratio():.2f}x smaller, "
            f"MSE {pruned.mse():.2f}, KL {pruned.kl_divergence():.4f}"
        )
    print()

    print("=== The BBS dot-product identity (Equations 1-3) ===")
    group = weights[3, :32]
    activations = rng.integers(-128, 128, size=32)
    exact = int(group @ activations)
    print(f"  reference dot product            : {exact}")
    print(f"  bi-directional bit-serial result : {bbs_dot_product(group, activations)}")

    pruned_group = prune_group(group, 4, PruningStrategy.ZERO_POINT_SHIFT)
    encoded = encode_group(pruned_group)
    print(
        f"  compressed group: {encoded.stored_columns} stored columns + "
        f"{encoded.storage_bits() - encoded.stored_columns * len(group)}-bit metadata "
        f"(constant {pruned_group.constant}, {pruned_group.num_redundant} redundant columns)"
    )
    decoded = decode_group(encoded)
    print(f"  decode(encode(group)) identical  : {bool(np.array_equal(decoded, pruned_group.values))}")
    print(
        "  dot product from compressed form : "
        f"{compressed_dot_product(pruned_group, activations)} "
        f"(pruned-weight reference {int(pruned_group.values @ activations)})"
    )


if __name__ == "__main__":
    main()
