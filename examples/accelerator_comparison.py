#!/usr/bin/env python
"""Accelerator comparison: BitVert against the six baselines (Figures 12/13).

Runs the cycle-level models of SparTen, ANT, Stripes, Pragmatic, Bitlet,
BitWave and BitVert (conservative + moderate) on a subset of the paper's DNN
benchmarks and prints speedups over Stripes, energy normalized to SparTen, and
the execution-cycle breakdown that explains where each design loses time
(Figure 15).

Run with::

    python examples/accelerator_comparison.py            # 3-model subset
    python examples/accelerator_comparison.py --full     # all 7 benchmarks
"""

from __future__ import annotations

import argparse

from repro.eval.benchmarks import ACCELERATOR_NAMES, BENCHMARK_MODEL_NAMES, BenchmarkSuite
from repro.eval.reporting import format_table, geometric_mean


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true", help="evaluate all seven benchmarks")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    models = BENCHMARK_MODEL_NAMES if args.full else ["ResNet-50", "ViT-Small", "BERT-MRPC"]
    suite = BenchmarkSuite(seed=args.seed)

    speedup_rows = []
    energy_rows = []
    breakdown_rows = []
    per_accel_speedups: dict[str, list[float]] = {name: [] for name in ACCELERATOR_NAMES}

    for model_name in models:
        model = suite.model(model_name)
        weights = suite.weights(model_name)
        print(f"running {model_name} ({model.total_macs / 1e9:.1f} GMACs) ...")
        accelerators = suite.accelerators()
        results = {name: accelerators[name].run_model(model, weights) for name in ACCELERATOR_NAMES}

        stripes = results["Stripes"]
        sparten = results["SparTen"]
        speedup_row = {"model": model_name}
        for name, result in results.items():
            speedup = result.speedup_over(stripes)
            speedup_row[name] = speedup
            per_accel_speedups[name].append(speedup)
            energy_rows.append(
                {
                    "model": model_name,
                    "accelerator": name,
                    "norm_energy_vs_sparten": result.total_energy_pj / sparten.total_energy_pj,
                    "off_chip_share": result.off_chip_energy_pj / result.total_energy_pj,
                }
            )
            breakdown = result.cycle_breakdown()
            breakdown_rows.append({"model": model_name, "accelerator": name, **breakdown})
        speedup_rows.append(speedup_row)

    speedup_rows.append(
        {"model": "Geomean", **{name: geometric_mean(values) for name, values in per_accel_speedups.items()}}
    )

    print()
    print(format_table(speedup_rows, title="Speedup over Stripes (Figure 12)"))
    print(format_table(energy_rows, title="Energy normalized to SparTen (Figure 13)"))
    print(format_table(breakdown_rows, title="Execution-cycle breakdown (Figure 15)"))


if __name__ == "__main__":
    main()
