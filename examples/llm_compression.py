#!/usr/bin/env python
"""LLM weight compression: BBS vs Olive on Llama-3-8B (Figure 17 / Table VI).

Synthesizes realistic INT8 weight statistics for every unique Llama-3-8B
projection, compresses them with conservative BBS (6.25 bits), moderate BBS
(4.25 bits) and Olive outlier-victim quantization (4 bits), and measures how
much each method distorts the layer outputs on synthetic activations — the
offline stand-in for the perplexity comparison of Figure 17.  It then prints
the PE-level comparison of Table VI (throughput per area of the BitVert PE vs
the Olive PE).

Run with::

    python examples/llm_compression.py
"""

from __future__ import annotations

import numpy as np

from repro.accelerators import bitvert_pe, olive_pe
from repro.core import PruningStrategy, prune_tensor
from repro.eval.reporting import format_table
from repro.nn import llama3_8b, synthesize_model
from repro.quant import olive_quantize


def main() -> None:
    model = llama3_8b()
    print(model.describe())
    weights = synthesize_model(model, seed=0, max_channels=128, max_reduction=1024)
    rng = np.random.default_rng(0)

    def output_distortion(compress) -> float:
        """Size-weighted relative error of layer outputs under compression."""
        errors, sizes = [], []
        for layer in weights.values():
            original = layer.int_weights
            compressed = compress(layer.int_weights)
            activations = rng.integers(-64, 64, size=original.shape[1])
            reference = original @ activations
            approximate = compressed @ activations
            errors.append(
                float(np.linalg.norm(approximate - reference) / (np.linalg.norm(reference) or 1.0))
            )
            sizes.append(layer.full_weight_count)
        sizes = np.asarray(sizes, dtype=np.float64)
        return float(np.dot(sizes / sizes.sum(), errors))

    rows = [
        {
            "method": "BBS conservative",
            "effective_bits": 6.25,
            "output_distortion": output_distortion(
                lambda w: prune_tensor(w, 2, PruningStrategy.ROUNDED_AVERAGE, keep_original=False).values
            ),
        },
        {
            "method": "BBS moderate",
            "effective_bits": 4.25,
            "output_distortion": output_distortion(
                lambda w: prune_tensor(w, 4, PruningStrategy.ZERO_POINT_SHIFT, keep_original=False).values
            ),
        },
        {
            "method": "Olive",
            "effective_bits": 4.0,
            "output_distortion": output_distortion(
                lambda w: olive_quantize(w, 4, keep_original=False).values
            ),
        },
    ]
    print(format_table(rows, title="Llama-3-8B weight compression (Figure 17 stand-in)"))

    bitvert = bitvert_pe(sub_group=8, optimized=True)
    olive = olive_pe()
    pe_rows = [
        {
            "pe": "Olive",
            "area_um2": olive.area_um2,
            "power_mw": olive.power_mw,
            "macs_per_cycle": 1.0,
            "norm_perf_per_area": 1.0,
        },
        {
            "pe": "BitVert (moderate)",
            "area_um2": bitvert.area_um2,
            "power_mw": bitvert.power_mw,
            "macs_per_cycle": 4.0,
            "norm_perf_per_area": (4.0 / bitvert.area_um2) / (1.0 / olive.area_um2),
        },
    ]
    print(format_table(pe_rows, title="PE comparison (Table VI)"))


if __name__ == "__main__":
    main()
