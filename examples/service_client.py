"""Walkthrough of the compression-as-a-service HTTP API (stdlib client).

Submits a compression job, polls it to completion, re-submits the identical
job to show the content-hash cache hit, and prints the service's cache and
pool statistics.  By default the script hosts an in-process server on an
ephemeral port so it is fully self-contained; point it at a running service
(``python -m repro.cli serve``) with ``--url``::

    PYTHONPATH=src python examples/service_client.py
    PYTHONPATH=src python examples/service_client.py --url http://localhost:8000
"""

from __future__ import annotations

import argparse
import json
import threading
import time
import urllib.request

JOB = {
    "type": "prune_tensor",
    "params": {"rows": 256, "cols": 2048, "num_columns": 4, "beta": 0.1},
}


def get(base: str, path: str) -> dict:
    with urllib.request.urlopen(base + path) as response:
        return json.loads(response.read())


def post(base: str, path: str, payload: dict) -> dict:
    request = urllib.request.Request(
        base + path,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request) as response:
        return json.loads(response.read())


def poll(base: str, job_id: str, interval: float = 0.05) -> dict:
    while True:
        status = get(base, f"/jobs/{job_id}")
        if status["state"] in ("done", "failed"):
            return get(base, f"/jobs/{job_id}/result")
        time.sleep(interval)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--url", default=None, help="running service (default: self-host)")
    args = parser.parse_args()

    server = None
    if args.url:
        base = args.url.rstrip("/")
    else:
        from repro.service import create_server

        server = create_server(port=0, max_workers=2)
        threading.Thread(target=server.serve_forever, daemon=True).start()
        base = f"http://127.0.0.1:{server.port}"
        print(f"self-hosted service on {base}")

    health = get(base, "/health")
    print(f"service up, {health['scenarios']} scenarios, "
          f"{health['pool']['workers']} workers")

    # Cold request: submit, then poll like an asynchronous client would.
    start = time.perf_counter()
    submitted = post(base, "/jobs", JOB)
    finished = poll(base, submitted["job_id"])
    cold = time.perf_counter() - start
    result = finished["result"]
    print(f"\ncold job {submitted['job_id']}: {finished['state']} in {cold:.3f}s")
    print(f"  effective bits:    {result['effective_bits']:.3f}")
    print(f"  compression ratio: {result['compression_ratio']:.3f}x")
    print(f"  content digest:    {result['content_digest'][:16]}…")

    # Identical request: served from the content-hash cache.
    start = time.perf_counter()
    cached = post(base, "/jobs?wait=60", JOB)
    warm = time.perf_counter() - start
    print(f"\ncached job {cached['job_id']}: {cached['state']} in {warm:.3f}s "
          f"(cache_hit={cached['cache_hit']})")
    if warm > 0:
        print(f"  speedup: {cold / warm:.0f}x")
    assert cached["result"] == result, "cache returned a different result!"

    print("\ncache stats:", json.dumps(get(base, "/cache/stats"), indent=2))

    if server is not None:
        server.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
