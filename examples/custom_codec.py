"""A third-party codec plugin in one file.

Registering a :class:`repro.codecs.Codec` subclass makes a new compression
backend a first-class citizen everywhere at once: ``repro codec list``,
``GET /v1/codecs`` discovery, ``POST /v1/compress`` submissions, campaign
``codec:``/``pipeline:`` grids, and the cached ``codec_compress`` service
scenario — no edits to the repository required.

This example implements magnitude top-k sparsification ("keep the largest
``k`` fraction of weights per channel, zero the rest"), runs it standalone,
and chains it in front of the built-in PTQ codec in a pipeline.

Run with::

    PYTHONPATH=src python examples/custom_codec.py
"""

from __future__ import annotations

import numpy as np

from repro.codecs import Codec, as_weight_matrix, register_codec, run_codec


@register_codec
class TopKSparseCodec(Codec):
    """Keep the ``density`` largest-magnitude weights per channel."""

    name = "topk_sparse"
    version = "1"
    summary = "Per-channel magnitude top-k sparsification (CSR-style footprint)."
    defaults = {"density": 0.25, "bits": 8, "index_bits": 16}

    def compress(self, tensor, **params):
        tensor = as_weight_matrix(tensor)
        density = float(params["density"])
        if not 0.0 < density <= 1.0:
            raise ValueError(f"density must be in (0, 1], got {density}")

        work = tensor.astype(np.float64)
        keep = max(1, int(round(density * work.shape[1])))
        # Indices of the top-k magnitudes per channel (stable for ties).
        order = np.argsort(-np.abs(work), axis=1, kind="stable")[:, :keep]
        mask = np.zeros_like(work, dtype=bool)
        np.put_along_axis(mask, order, True, axis=1)
        reconstruction = np.where(mask, work, 0.0)
        if np.issubdtype(tensor.dtype, np.integer):
            reconstruction = reconstruction.astype(tensor.dtype)

        # Footprint: one value + one column index per kept weight.
        stored = int(mask.sum())
        storage_bits = stored * (int(params["bits"]) + int(params["index_bits"]))
        return self._result(
            tensor,
            reconstruction,
            storage_bits=storage_bits,
            params=params,
            payload=(reconstruction, mask),
            extras={"kept_fraction": stored / tensor.size},
        )


def main() -> None:
    rng = np.random.default_rng(0)
    tensor = rng.normal(0.0, 1.0, size=(64, 256))

    result = run_codec("topk_sparse", tensor, {"density": 0.25})
    print(f"topk_sparse: mse={result.mse():.5f} "
          f"effective_bits={result.effective_bits():.3f} "
          f"kept={result.extras['kept_fraction']:.2%}")
    print(f"digest: {result.digest()}")

    chained = run_codec("pipeline", tensor, {"stages": [
        {"codec": "topk_sparse", "params": {"density": 0.5}},
        {"codec": "ptq", "params": {"bits": 6}},
    ]})
    for stage in chained.stages:
        print(f"  stage {stage.codec}: mse={stage.stage_mse:.3e} "
              f"cumulative={stage.cumulative_mse:.3e}")
    print(f"pipeline mse={chained.mse():.5f}")


if __name__ == "__main__":
    main()
