"""Federated campaign dispatch: one campaign fanned out over two serve nodes.

By default the script self-hosts two in-process service nodes on ephemeral
ports, dispatches a small quantization campaign across them, runs the same
campaign locally, and proves the two reports are byte-identical — the
property that makes federation transparent.  Point it at real nodes
(``python -m repro.cli serve`` on each machine) with ``--nodes``::

    PYTHONPATH=src python examples/federated_campaign.py
    PYTHONPATH=src python examples/federated_campaign.py \
        --nodes http://host-a:8000 http://host-b:8000
"""

from __future__ import annotations

import argparse
import tempfile
import threading
from pathlib import Path

SPEC = {
    "name": "federated-demo",
    "description": "Quantization backends swept across a small synthetic matrix.",
    "grids": [
        {
            "name": "quant",
            "scenario": "quantize_tensor",
            "params": {"rows": 32, "cols": 128},
            "sweep": {"backend": ["microscaling", "ptq", "olive"], "bits": [4, 8]},
        }
    ],
}


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", nargs="+", default=None,
                        help="running service endpoints (default: self-host two)")
    args = parser.parse_args()

    from repro.campaign import CampaignRunner, parse_spec
    from repro.campaign.dispatch import CampaignDispatcher

    servers = []
    if args.nodes:
        endpoints = args.nodes
    else:
        from repro.service import create_server

        for _ in range(2):
            server = create_server(port=0, max_workers=2)
            threading.Thread(target=server.serve_forever, daemon=True).start()
            servers.append(server)
        endpoints = [f"http://127.0.0.1:{server.port}" for server in servers]
        print(f"self-hosted nodes: {', '.join(endpoints)}")

    spec = parse_spec(SPEC)
    with tempfile.TemporaryDirectory(prefix="repro-federated-") as scratch:
        scratch = Path(scratch)

        dispatcher = CampaignDispatcher(spec, endpoints, scratch / "federated")
        stats = dispatcher.run()
        print(f"\ndispatched {stats['executed']} cell(s) "
              f"in {stats['elapsed_seconds']:.2f}s:")
        for node in stats["nodes"]:
            state = "ok" if node["alive"] else f"lost ({node['reason']})"
            print(f"  {node['url']}: {node['completed']} cell(s) — {state}")

        local = CampaignRunner(spec, scratch / "local", jobs=2)
        local.run()

        federated_report = (scratch / "federated" / "report.json").read_bytes()
        local_report = (scratch / "local" / "report.json").read_bytes()
        identical = federated_report == local_report
        print(f"\nfederated report == local report: {identical}")
        assert identical, "federation must be transparent!"

    for server in servers:
        server.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
