"""Edge-case and failure-injection tests across the stack."""

from __future__ import annotations

import numpy as np
import pytest

from repro.accelerators import (
    AntAccelerator,
    BitVertAccelerator,
    BitWaveAccelerator,
    SparTenAccelerator,
    StripesAccelerator,
)
from repro.core import (
    MODERATE_PRESET,
    PruningStrategy,
    encode_group,
    prune_group,
    prune_tensor,
)
from repro.core.zero_point_shift import zero_point_shift_group
from repro.nn.model_zoo import get_model
from repro.nn.workloads import layer_workload


class TestExtremeWeightGroups:
    """Binary pruning on degenerate weight distributions."""

    def test_all_minimum_code(self):
        group = np.full(32, -128)
        pruned = zero_point_shift_group(group, 4)
        assert pruned.values.min() >= -128
        assert np.array_equal(
            prune_group(group, 4, PruningStrategy.ZERO_POINT_SHIFT).values, pruned.values
        )
        encode_group(pruned)  # must not raise

    def test_all_maximum_code(self):
        group = np.full(32, 127)
        pruned = zero_point_shift_group(group, 4)
        assert pruned.values.max() <= 127
        assert float(np.mean((pruned.values - group) ** 2)) <= 64.0

    def test_all_zero_group(self):
        group = np.zeros(32, dtype=np.int64)
        for strategy in (PruningStrategy.ROUNDED_AVERAGE, PruningStrategy.ZERO_POINT_SHIFT):
            pruned = prune_group(group, 6, strategy)
            assert np.array_equal(pruned.values, group)

    def test_alternating_extremes(self):
        group = np.tile([-128, 127], 16)
        pruned = zero_point_shift_group(group, 4)
        assert pruned.values.min() >= -128 and pruned.values.max() <= 127
        encode_group(pruned)

    def test_single_outlier_in_small_group(self):
        group = np.array([1, 0, -2, 1, 0, 1, -1, 127])
        pruned = zero_point_shift_group(group, 4)
        # The outlier dominates the range; the small values must not blow up.
        assert np.max(np.abs(pruned.values[:7] - group[:7])) <= 16

    def test_tensor_with_single_channel_and_group(self):
        weights = np.arange(-16, 16).reshape(1, 32)
        pruned = prune_tensor(weights, 4, PruningStrategy.ZERO_POINT_SHIFT)
        assert pruned.values.shape == (1, 32)
        assert pruned.effective_bits() == pytest.approx(4.25)

    def test_tensor_narrower_than_group(self):
        weights = np.arange(-6, 6).reshape(2, 6)
        pruned = prune_tensor(weights, 2, group_size=32)
        assert pruned.values.shape == (2, 6)


class TestAcceleratorEdgeCases:
    def test_tiny_layer_runs_on_every_accelerator(self, small_resnet_weights):
        # conv1 (3x7x7 reduction = 147, 64 channels) exercises padding and
        # partially filled PE columns.
        model = get_model("ResNet-50")
        spec = model.layers[0]
        workload = layer_workload(spec)
        layer = small_resnet_weights[spec.name]
        for accel in (
            StripesAccelerator(),
            BitWaveAccelerator(),
            SparTenAccelerator(),
            AntAccelerator(),
            BitVertAccelerator(preset=MODERATE_PRESET),
        ):
            perf = accel.run_layer(workload, layer)
            assert perf.compute_cycles > 0
            assert perf.total_energy_pj > 0

    def test_bitwave_compressed_bytes_below_dense(self, small_resnet_weights):
        model = get_model("ResNet-50")
        spec = model.layers[5]
        workload = layer_workload(spec)
        accel = BitWaveAccelerator(pruned_columns=3)
        stored = accel.stored_weight_bytes(workload, small_resnet_weights[spec.name])
        assert stored < workload.weight_bytes

    def test_bitvert_stored_bytes_between_bounds(self, small_resnet_weights):
        model = get_model("ResNet-50")
        spec = model.layers[5]
        workload = layer_workload(spec)
        accel = BitVertAccelerator(preset=MODERATE_PRESET)
        stored = accel.stored_weight_bytes(workload, small_resnet_weights[spec.name])
        # Between the fully-pruned bound (4.25/8) and dense.
        assert 0.5 * workload.weight_bytes < stored < workload.weight_bytes

    def test_ant_activation_precision(self, small_resnet_weights):
        model = get_model("ResNet-50")
        workload = layer_workload(model.layers[5])
        assert AntAccelerator().activation_bits(workload) == 6
        assert StripesAccelerator().activation_bits(workload) == 8

    def test_sparten_bitmask_overhead(self, small_resnet_weights):
        model = get_model("ResNet-50")
        spec = model.layers[5]
        workload = layer_workload(spec)
        stored = SparTenAccelerator().stored_weight_bytes(
            workload, small_resnet_weights[spec.name]
        )
        # Dense weights (low value sparsity) plus a 12.5 % bitmask overhead.
        assert stored > workload.weight_bytes
        assert stored < 1.2 * workload.weight_bytes

    def test_bitvert_compress_model_caches(self, small_vit_weights):
        model = get_model("ViT-Small")
        accel = BitVertAccelerator(preset=MODERATE_PRESET)
        compressed = accel.compress_model(model, small_vit_weights)
        assert set(compressed) == set(small_vit_weights)
        # A second run reuses the cache (same objects).
        again = accel._layer_compression(small_vit_weights["attn.qkv"])
        assert again is compressed["attn.qkv"]
