"""End-to-end gateway failover: SIGKILL a node mid-campaign, same report.

The load-bearing acceptance test for the gateway control plane: a
codec-pipeline campaign dispatched through the gateway over three real
``repro serve --register`` subprocesses must survive one node being
SIGKILLed mid-run — the gateway replays the lost node's unfinished jobs
onto the survivors from its replica journal — and still produce
``report.json``/``report.csv`` byte-identical to a local run.

Subprocesses (not threads) are the point: SIGKILL gives the node no chance
to flush, drain, or say goodbye, exactly the failure the replication design
must absorb.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.campaign import CampaignRunner, parse_spec
from repro.campaign.dispatch import CampaignDispatcher
from repro.gateway import create_gateway
from repro.service.client import ServiceClient

#: A two-grid codec campaign: a pipeline sweep feeding a quantization sweep.
#: Cells are sized to take long enough that a mid-run kill lands while work
#: is genuinely outstanding, but the whole run stays test-suite friendly.
SPEC = {
    "name": "gateway-e2e",
    "grids": [
        {
            "name": "chain",
            "pipeline": [{"codec": "prune"}, {"codec": "microscaling"}],
            "params": {"rows": 96, "cols": 384},
            "sweep": {"seed": [0, 1, 2, 3, 4, 5]},
        },
        {
            "name": "mx",
            "codec": "microscaling",
            "params": {"rows": 96, "cols": 384},
            "sweep": {"bits": [4, 6, 8], "seed": [0, 1]},
            "depends_on": ["chain"],
        },
    ],
}


def _spawn_node(gateway_url: str, journal_dir: Path) -> tuple[subprocess.Popen, str]:
    """Start `repro serve --register` as a real subprocess; return (proc, url)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONUNBUFFERED"] = "1"
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--port", "0", "--workers", "2",
            "--journal", str(journal_dir),
            "--register", gateway_url,
            "--heartbeat-interval", "0.2",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    deadline = time.monotonic() + 30.0
    banner = ""
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            raise AssertionError(f"node exited early: rc={proc.poll()}")
        banner += line
        if line.startswith("repro service listening on "):
            url = line.split()[-1].strip()
            # Drain the remaining startup output so the pipe never fills.
            threading.Thread(
                target=proc.stdout.read, daemon=True
            ).start()
            return proc, url
    raise AssertionError(f"no listening banner within 30s:\n{banner}")


class TestGatewayFailoverE2E:
    def test_sigkill_mid_campaign_report_byte_identical(self, tmp_path):
        gateway = create_gateway(
            port=0,
            state_dir=str(tmp_path / "gateway-state"),
            suspect_after=0.6,
            dead_after=1.5,
            sweep_interval=0.1,
            node_timeout=10.0,
        )
        threading.Thread(target=gateway.serve_forever, daemon=True).start()
        gateway_url = f"http://127.0.0.1:{gateway.port}"

        nodes = []
        try:
            for i in range(3):
                nodes.append(_spawn_node(gateway_url, tmp_path / f"journal-{i}"))
            client = ServiceClient(gateway_url, timeout=10.0)
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                if client.health()["nodes"]["healthy"] == 3:
                    break
                time.sleep(0.1)
            assert client.health()["nodes"]["healthy"] == 3

            run_dir = tmp_path / "gateway-run"
            results_dir = run_dir / "results"
            dispatcher = CampaignDispatcher(
                parse_spec(SPEC), [], run_dir,
                gateway=gateway_url, poll_interval=0.05, max_inflight=4,
            )

            victim_proc, _victim_url = nodes[0]
            killed = threading.Event()

            def assassin():
                # Strike once real progress exists and work is still due:
                # some checkpoints written, but not all 18 cells.
                deadline = time.monotonic() + 120.0
                while time.monotonic() < deadline:
                    done = (
                        len(list(results_dir.glob("*.json")))
                        if results_dir.exists()
                        else 0
                    )
                    if 2 <= done < len(dispatcher.plan.jobs):
                        victim_proc.send_signal(signal.SIGKILL)
                        killed.set()
                        return
                    if done >= len(dispatcher.plan.jobs):
                        return  # campaign outran the assassin; still a pass
                    time.sleep(0.02)

            thread = threading.Thread(target=assassin, daemon=True)
            thread.start()
            stats = dispatcher.run()
            thread.join(timeout=5.0)

            assert stats["report_written"] is True
            assert stats["failed"] == 0
            assert stats["mode"] == "gateway"
            assert killed.is_set(), (
                "the campaign finished before the assassin fired; "
                "grow the spec so the kill lands mid-run"
            )
            assert victim_proc.wait(timeout=10.0) != 0

            local_dir = tmp_path / "local-run"
            CampaignRunner(parse_spec(SPEC), local_dir, jobs=2).run()
            assert (run_dir / "report.json").read_bytes() == (
                local_dir / "report.json"
            ).read_bytes(), "gateway-dispatched report differs from local run"
            assert (run_dir / "report.csv").read_bytes() == (
                local_dir / "report.csv"
            ).read_bytes()

            # A suspect node's in-flight jobs are deliberately left alone
            # (polls answer queued without resubmitting), so the victim's
            # outstanding work only replays once the sweeper declares it
            # dead — which must happen shortly, since its heartbeats
            # stopped for good.
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                if gateway.nodes.counts()["dead"] == 1:
                    break
                time.sleep(0.1)
            counts = gateway.nodes.counts()
            assert counts["dead"] == 1, f"victim never declared dead: {counts}"
        finally:
            for proc, _url in nodes:
                if proc.poll() is None:
                    proc.terminate()
                    try:
                        proc.wait(timeout=10.0)
                    except subprocess.TimeoutExpired:
                        proc.kill()
            gateway.close()
