"""Tests for the PTQ substrate (per-channel/per-tensor quantization)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quant.ptq import (
    dequantize,
    optimal_clip_scale,
    quantize_per_channel,
    quantize_per_tensor,
    requantize_to_lower_bits,
)


@pytest.fixture(scope="module")
def float_weights():
    rng = np.random.default_rng(3)
    weights = rng.normal(0, 0.02, (32, 256))
    weights[:4] *= 6.0  # outlier channels
    return weights


class TestPerChannelQuantization:
    def test_codes_in_range(self, float_weights):
        quantized = quantize_per_channel(float_weights, 8)
        assert quantized.values.min() >= -128
        assert quantized.values.max() <= 127

    def test_each_channel_uses_full_range(self, float_weights):
        quantized = quantize_per_channel(float_weights, 8)
        per_channel_max = np.abs(quantized.values).max(axis=1)
        assert np.all(per_channel_max == 127)

    def test_reconstruction_error_small(self, float_weights):
        quantized = quantize_per_channel(float_weights, 8)
        reconstructed = dequantize(quantized)
        relative = np.abs(reconstructed - float_weights).max() / np.abs(float_weights).max()
        assert relative < 0.01

    def test_per_channel_better_than_per_tensor_with_outliers(self, float_weights):
        per_channel = quantize_per_channel(float_weights, 8)
        per_tensor = quantize_per_tensor(float_weights, 8)
        error_channel = np.mean((dequantize(per_channel) - float_weights) ** 2)
        error_tensor = np.mean((dequantize(per_tensor) - float_weights) ** 2)
        assert error_channel < error_tensor

    def test_scales_track_outlier_channels(self, float_weights):
        quantized = quantize_per_channel(float_weights, 8)
        assert quantized.scales[:4].min() > quantized.scales[4:].max()

    def test_calibrated_not_worse_at_low_bits(self, float_weights):
        plain = quantize_per_channel(float_weights, 4)
        calibrated = quantize_per_channel(float_weights, 4, calibrate=True)
        error_plain = np.mean((dequantize(plain) - float_weights) ** 2)
        error_calibrated = np.mean((dequantize(calibrated) - float_weights) ** 2)
        assert error_calibrated <= error_plain * 1.0000001

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            quantize_per_channel(np.zeros(8))

    def test_rejects_tiny_bits(self, float_weights):
        with pytest.raises(ValueError):
            quantize_per_channel(float_weights, 1)

    def test_zero_channel(self):
        weights = np.zeros((2, 16))
        quantized = quantize_per_channel(weights, 8)
        assert np.all(quantized.values == 0)
        assert np.all(quantized.scales == 1.0)

    def test_effective_bits(self, float_weights):
        assert quantize_per_channel(float_weights, 8).effective_bits() == 8.0


class TestOptimalClipScale:
    def test_zero_channel(self):
        assert optimal_clip_scale(np.zeros(16), 8) == 1.0

    def test_heavy_tail_clips_below_max(self):
        rng = np.random.default_rng(0)
        channel = rng.normal(0, 1.0, 4096)
        channel[0] = 50.0  # single extreme outlier
        scale = optimal_clip_scale(channel, 4)
        assert scale < 50.0 / 7.0  # tighter than max-abs scaling

    @given(st.integers(2, 8), st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_scale_positive_property(self, bits, seed):
        channel = np.random.default_rng(seed).normal(0, 1, 64)
        assert optimal_clip_scale(channel, bits) > 0


class TestRequantize:
    def test_levels_reduced(self, float_weights):
        quantized = quantize_per_channel(float_weights, 8)
        lower = requantize_to_lower_bits(quantized, 4)
        # 4-bit re-quantization leaves at most 16 distinct codes per channel.
        for channel in lower.values:
            assert len(np.unique(channel)) <= 16

    def test_sensitive_channels_preserved(self, float_weights):
        quantized = quantize_per_channel(float_weights, 8)
        sensitive = np.zeros(quantized.num_channels, dtype=bool)
        sensitive[:5] = True
        lower = requantize_to_lower_bits(quantized, 4, sensitive_channels=sensitive)
        assert np.array_equal(lower.values[:5], quantized.values[:5])

    def test_error_grows_as_bits_shrink(self, float_weights):
        quantized = quantize_per_channel(float_weights, 8)
        errors = []
        for bits in (6, 5, 4, 3):
            lower = requantize_to_lower_bits(quantized, bits)
            errors.append(float(np.mean((lower.values - quantized.values) ** 2)))
        assert errors == sorted(errors)

    def test_values_remain_in_int8_domain(self, float_weights):
        quantized = quantize_per_channel(float_weights, 8)
        lower = requantize_to_lower_bits(quantized, 5)
        assert lower.values.min() >= -128
        assert lower.values.max() <= 127

    def test_rejects_upscaling(self, float_weights):
        quantized = quantize_per_channel(float_weights, 8)
        with pytest.raises(ValueError):
            requantize_to_lower_bits(quantized, 8)

    def test_rejects_bad_sensitive_mask(self, float_weights):
        quantized = quantize_per_channel(float_weights, 8)
        with pytest.raises(ValueError):
            requantize_to_lower_bits(quantized, 4, sensitive_channels=np.zeros(3, dtype=bool))
