"""Tests for the BitVert hardware components: scheduler, PE, channel reordering."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accelerators.bitvert.pe import BitVertPE
from repro.accelerators.bitvert.reorder import reorder_channels, unshuffle_output
from repro.accelerators.bitvert.scheduler import (
    column_index_sequence,
    schedule_column,
)
from repro.core.binary_pruning import prune_group
from repro.core.encoding import PruningStrategy, encode_group, unpruned_group


class TestScheduler:
    def test_all_zero_column(self):
        schedule = schedule_column(np.zeros(8, dtype=np.int64))
        assert not schedule.invert
        assert schedule.effectual_count == 0
        assert not any(schedule.valid)

    def test_all_one_column_is_inverted(self):
        schedule = schedule_column(np.ones(8, dtype=np.int64))
        assert schedule.invert
        assert schedule.effectual_count == 0

    def test_minority_ones_selected_directly(self):
        column = np.array([0, 1, 0, 0, 1, 0, 0, 0])
        schedule = schedule_column(column)
        assert not schedule.invert
        selected = {index for index, valid in zip(schedule.selections, schedule.valid, strict=True) if valid}
        assert selected == {1, 4}

    def test_majority_ones_select_zero_positions(self):
        column = np.array([1, 1, 1, 0, 1, 1, 0, 1])
        schedule = schedule_column(column)
        assert schedule.invert
        selected = {index for index, valid in zip(schedule.selections, schedule.valid, strict=True) if valid}
        assert selected == {3, 6}

    def test_exactly_half_not_inverted(self):
        column = np.array([1, 1, 1, 1, 0, 0, 0, 0])
        schedule = schedule_column(column)
        assert not schedule.invert
        assert schedule.effectual_count == 4

    def test_worst_case_window(self):
        # The paper's worst case: effectual bits at positions {4,5,6,7}.
        column = np.array([0, 0, 0, 0, 1, 1, 1, 1])
        schedule = schedule_column(column)
        selected = {index for index, valid in zip(schedule.selections, schedule.valid, strict=True) if valid}
        assert selected == {4, 5, 6, 7}

    def test_rejects_odd_sub_group(self):
        with pytest.raises(ValueError):
            schedule_column(np.zeros(7, dtype=np.int64))

    @given(st.lists(st.integers(0, 1), min_size=8, max_size=8))
    @settings(max_examples=256, deadline=None)
    def test_sliding_encoders_cover_all_effectual_bits_property(self, bits):
        # The key structural claim behind the compact 5:1 muxes: for any bit
        # pattern, the four sliding priority encoders select exactly the
        # minority-symbol positions.
        column = np.array(bits)
        schedule = schedule_column(column)
        target_symbol = 0 if schedule.invert else 1
        expected = set(np.flatnonzero(column == target_symbol)) if target_symbol in column else set()
        if len(expected) > 4:
            expected = set()  # cannot happen: minority is <= 4 by definition
        selected = {index for index, valid in zip(schedule.selections, schedule.valid, strict=True) if valid}
        assert selected == expected
        # Each lane's selection stays inside its sliding window.
        for lane, (index, valid) in enumerate(zip(schedule.selections, schedule.valid, strict=True)):
            if valid:
                assert lane <= index <= lane + 4


class TestColumnIndexSequence:
    def test_no_redundant_columns(self):
        assert column_index_sequence(8, 0, 8) == [7, 6, 5, 4, 3, 2, 1, 0]

    def test_with_redundant_columns(self):
        assert column_index_sequence(8, 2, 4) == [5, 4, 3, 2]

    def test_rejects_impossible_request(self):
        with pytest.raises(ValueError):
            column_index_sequence(8, 3, 6)
        with pytest.raises(ValueError):
            column_index_sequence(8, -1, 4)


class TestBitVertPE:
    @pytest.fixture(scope="class")
    def pe(self) -> BitVertPE:
        return BitVertPE()

    @pytest.mark.parametrize(
        "strategy", [PruningStrategy.ROUNDED_AVERAGE, PruningStrategy.ZERO_POINT_SHIFT]
    )
    @pytest.mark.parametrize("columns", [0, 2, 4, 6])
    def test_compressed_dot_product_exact(self, pe, strategy, columns):
        rng = np.random.default_rng(columns * 10 + (1 if strategy is PruningStrategy.ROUNDED_AVERAGE else 2))
        for _ in range(10):
            weights = rng.integers(-128, 128, 16)
            activations = rng.integers(-128, 128, 16)
            pruned = prune_group(weights, columns, strategy)
            encoded = encode_group(pruned)
            result = pe.compute_group(encoded, activations)
            assert result.dot_product == int(pruned.values @ activations)

    def test_cycle_count_matches_stored_columns(self, pe, fresh_rng):
        weights = fresh_rng.integers(-128, 128, 16)
        for columns in (0, 2, 4, 6):
            pruned = prune_group(weights, columns, PruningStrategy.ZERO_POINT_SHIFT)
            encoded = encode_group(pruned)
            result = pe.compute_group(encoded, fresh_rng.integers(-128, 128, 16))
            assert result.cycles == max(2, 8 - columns)

    def test_effectual_ops_at_most_half(self, pe, fresh_rng):
        for _ in range(10):
            weights = fresh_rng.integers(-128, 128, 16)
            encoded = encode_group(unpruned_group(weights))
            result = pe.compute_group(encoded, fresh_rng.integers(-128, 128, 16))
            # 8 columns x 16 weights = 128 bit positions, at most half effectual.
            assert result.effectual_bit_ops <= 64
            assert result.effectual_bit_ops + result.skipped_bit_ops == 128

    def test_uncompressed_group_exact(self, pe, fresh_rng):
        for _ in range(10):
            weights = fresh_rng.integers(-128, 128, 16)
            activations = fresh_rng.integers(-128, 128, 16)
            result = pe.compute_uncompressed_group(weights, activations)
            assert result.dot_product == int(weights @ activations)
            assert result.cycles == 8

    def test_activation_count_mismatch(self, pe, fresh_rng):
        encoded = encode_group(unpruned_group(fresh_rng.integers(-10, 10, 16)))
        with pytest.raises(ValueError):
            pe.compute_group(encoded, fresh_rng.integers(-10, 10, 8))

    def test_invalid_sub_group_configuration(self):
        with pytest.raises(ValueError):
            BitVertPE(group_size=16, sub_group=5)

    @given(st.integers(0, 6), st.integers(0, 10_000))
    @settings(max_examples=60, deadline=None)
    def test_pe_exactness_property(self, columns, seed):
        rng = np.random.default_rng(seed)
        pe = BitVertPE()
        weights = rng.integers(-128, 128, 16)
        activations = rng.integers(-128, 128, 16)
        pruned = prune_group(weights, columns, PruningStrategy.ZERO_POINT_SHIFT)
        result = pe.compute_group(encode_group(pruned), activations)
        assert result.dot_product == int(pruned.values @ activations)


class TestChannelReordering:
    def test_permutation_groups_sensitive_first(self, fresh_rng):
        weights = fresh_rng.normal(size=(8, 4))
        mask = np.array([0, 1, 0, 1, 0, 0, 0, 1], dtype=bool)
        reordered, reordering = reorder_channels(weights, mask)
        assert reordering.sensitive_count == 3
        assert np.array_equal(reordered[:3], weights[mask])

    def test_unshuffle_restores_layer_output(self, fresh_rng):
        weights = fresh_rng.normal(size=(12, 16))
        mask = fresh_rng.random(12) < 0.3
        inputs = fresh_rng.normal(size=(5, 16))
        reordered, reordering = reorder_channels(weights, mask)
        restored = unshuffle_output(inputs @ reordered.T, reordering)
        assert np.allclose(restored, inputs @ weights.T)

    def test_residual_addition_stays_correct(self, fresh_rng):
        # The Figure 9(b) scenario: two weight tensors with different channel
        # orders process the same input and their outputs are added.
        inputs = fresh_rng.normal(size=(4, 16))
        weights_a = fresh_rng.normal(size=(8, 16))
        weights_b = fresh_rng.normal(size=(8, 16))
        mask_a = np.array([1, 0, 0, 1, 0, 0, 0, 0], dtype=bool)
        mask_b = np.array([0, 0, 1, 0, 0, 1, 0, 0], dtype=bool)
        reordered_a, order_a = reorder_channels(weights_a, mask_a)
        reordered_b, order_b = reorder_channels(weights_b, mask_b)
        out_a = unshuffle_output(inputs @ reordered_a.T, order_a)
        out_b = unshuffle_output(inputs @ reordered_b.T, order_b)
        assert np.allclose(out_a + out_b, inputs @ weights_a.T + inputs @ weights_b.T)

    def test_inverse_permutation(self, fresh_rng):
        weights = fresh_rng.normal(size=(6, 3))
        mask = np.array([0, 1, 0, 0, 1, 0], dtype=bool)
        _, reordering = reorder_channels(weights, mask)
        inverse = reordering.inverse()
        assert np.array_equal(reordering.permutation[inverse], np.arange(6))

    def test_index_buffer_size(self, fresh_rng):
        weights = fresh_rng.normal(size=(512, 4))
        mask = np.zeros(512, dtype=bool)
        _, reordering = reorder_channels(weights, mask)
        # 512 channels x 9 bits = 576 bytes; tiny compared to the weights.
        assert reordering.index_buffer_bytes() <= 1024

    def test_shape_validation(self, fresh_rng):
        weights = fresh_rng.normal(size=(4, 4))
        with pytest.raises(ValueError):
            reorder_channels(weights, np.zeros(3, dtype=bool))
        with pytest.raises(ValueError):
            reorder_channels(fresh_rng.normal(size=(4,)), np.zeros(4, dtype=bool))
        _, reordering = reorder_channels(weights, np.zeros(4, dtype=bool))
        with pytest.raises(ValueError):
            unshuffle_output(np.zeros((2, 5)), reordering)
