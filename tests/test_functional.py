"""Tests for the numpy DNN kernels."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import functional as F


def naive_conv2d(inputs, weight, stride=1, padding=0):
    """Reference convolution written with explicit loops."""
    batch, _, height, width = inputs.shape
    out_c, in_c, kernel, _ = weight.shape
    if padding:
        inputs = np.pad(inputs, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    out_h = (height + 2 * padding - kernel) // stride + 1
    out_w = (width + 2 * padding - kernel) // stride + 1
    output = np.zeros((batch, out_c, out_h, out_w))
    for b in range(batch):
        for oc in range(out_c):
            for y in range(out_h):
                for x in range(out_w):
                    patch = inputs[b, :, y * stride : y * stride + kernel, x * stride : x * stride + kernel]
                    output[b, oc, y, x] = np.sum(patch * weight[oc])
    return output


class TestConv2d:
    @pytest.mark.parametrize("stride,padding", [(1, 0), (1, 1), (2, 1), (2, 0)])
    def test_matches_naive(self, stride, padding, fresh_rng):
        inputs = fresh_rng.normal(size=(2, 3, 10, 10))
        weight = fresh_rng.normal(size=(4, 3, 3, 3))
        fast = F.conv2d(inputs, weight, stride=stride, padding=padding)
        slow = naive_conv2d(inputs, weight, stride=stride, padding=padding)
        assert np.allclose(fast, slow)

    def test_bias(self, fresh_rng):
        inputs = fresh_rng.normal(size=(1, 2, 6, 6))
        weight = fresh_rng.normal(size=(3, 2, 3, 3))
        bias = np.array([1.0, -1.0, 0.5])
        with_bias = F.conv2d(inputs, weight, bias, padding=1)
        without = F.conv2d(inputs, weight, padding=1)
        assert np.allclose(with_bias - without, bias[None, :, None, None])

    def test_1x1_conv_is_linear(self, fresh_rng):
        inputs = fresh_rng.normal(size=(1, 8, 4, 4))
        weight = fresh_rng.normal(size=(16, 8, 1, 1))
        conv = F.conv2d(inputs, weight)
        flat = inputs.reshape(1, 8, -1).transpose(0, 2, 1)
        linear = (flat @ weight.reshape(16, 8).T).transpose(0, 2, 1).reshape(1, 16, 4, 4)
        assert np.allclose(conv, linear)

    def test_rejects_non_square_kernel(self, fresh_rng):
        with pytest.raises(ValueError):
            F.conv2d(fresh_rng.normal(size=(1, 2, 6, 6)), fresh_rng.normal(size=(3, 2, 3, 2)))

    def test_rejects_channel_mismatch(self, fresh_rng):
        with pytest.raises(ValueError):
            F.conv2d(fresh_rng.normal(size=(1, 2, 6, 6)), fresh_rng.normal(size=(3, 4, 3, 3)))

    def test_rejects_oversized_kernel(self, fresh_rng):
        with pytest.raises(ValueError):
            F.im2col(fresh_rng.normal(size=(1, 1, 3, 3)), kernel=5)


class TestIm2Col:
    def test_shapes(self, fresh_rng):
        inputs = fresh_rng.normal(size=(2, 3, 8, 8))
        columns, out_h, out_w = F.im2col(inputs, 3, stride=1, padding=1)
        assert (out_h, out_w) == (8, 8)
        assert columns.shape == (2, 64, 27)

    def test_col2im_adjoint_of_im2col_on_ones(self):
        # Folding the unfolded all-ones tensor counts how many patches cover
        # each pixel.
        inputs = np.ones((1, 1, 4, 4))
        columns, _, _ = F.im2col(inputs, 3, stride=1, padding=0)
        folded = F.col2im(np.ones_like(columns), (1, 1, 4, 4), 3, stride=1, padding=0)
        assert folded[0, 0, 1, 1] == 4.0  # centre pixels covered by 4 patches
        assert folded[0, 0, 0, 0] == 1.0


class TestActivationsAndNorms:
    def test_relu(self):
        assert np.array_equal(F.relu(np.array([-1.0, 0.0, 2.0])), [0.0, 0.0, 2.0])

    def test_gelu_limits(self):
        assert F.gelu(np.array([10.0]))[0] == pytest.approx(10.0, rel=1e-3)
        assert F.gelu(np.array([-10.0]))[0] == pytest.approx(0.0, abs=1e-3)
        assert F.gelu(np.array([0.0]))[0] == 0.0

    def test_softmax_rows_sum_to_one(self, fresh_rng):
        logits = fresh_rng.normal(size=(5, 10)) * 20
        probabilities = F.softmax(logits)
        assert np.allclose(probabilities.sum(axis=-1), 1.0)
        assert probabilities.min() >= 0

    def test_log_softmax_consistent(self, fresh_rng):
        logits = fresh_rng.normal(size=(3, 7))
        assert np.allclose(np.exp(F.log_softmax(logits)), F.softmax(logits))

    def test_layer_norm_statistics(self, fresh_rng):
        inputs = fresh_rng.normal(loc=3.0, scale=2.0, size=(4, 64))
        normalized = F.layer_norm(inputs)
        assert np.allclose(normalized.mean(axis=-1), 0.0, atol=1e-6)
        assert np.allclose(normalized.std(axis=-1), 1.0, atol=1e-3)

    def test_layer_norm_affine(self, fresh_rng):
        inputs = fresh_rng.normal(size=(2, 8))
        gamma, beta = np.full(8, 2.0), np.full(8, 1.0)
        assert np.allclose(
            F.layer_norm(inputs, gamma, beta), F.layer_norm(inputs) * 2.0 + 1.0
        )

    def test_batch_norm_identity_with_running_stats(self, fresh_rng):
        inputs = fresh_rng.normal(size=(2, 3, 4, 4))
        mean = np.zeros(3)
        var = np.ones(3)
        assert np.allclose(F.batch_norm(inputs, mean, var), inputs, atol=1e-4)

    def test_cross_entropy_perfect_prediction(self):
        logits = np.array([[100.0, 0.0], [0.0, 100.0]])
        assert F.cross_entropy(logits, np.array([0, 1])) == pytest.approx(0.0, abs=1e-6)


class TestPooling:
    def test_max_pool(self):
        inputs = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        pooled = F.max_pool2d(inputs, 2)
        assert np.array_equal(pooled[0, 0], [[5, 7], [13, 15]])

    def test_avg_pool(self):
        inputs = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        pooled = F.avg_pool2d(inputs, 2)
        assert np.array_equal(pooled[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_stride_defaults_to_kernel(self, fresh_rng):
        inputs = fresh_rng.normal(size=(1, 2, 8, 8))
        assert F.max_pool2d(inputs, 2).shape == (1, 2, 4, 4)


class TestAttention:
    def test_output_shape(self, fresh_rng):
        q = fresh_rng.normal(size=(2, 4, 8, 16))
        k = fresh_rng.normal(size=(2, 4, 8, 16))
        v = fresh_rng.normal(size=(2, 4, 8, 16))
        assert F.scaled_dot_product_attention(q, k, v).shape == (2, 4, 8, 16)

    def test_uniform_keys_average_values(self):
        q = np.zeros((1, 2, 4))
        k = np.zeros((1, 2, 4))
        v = np.array([[[1.0, 0.0, 0.0, 0.0], [0.0, 1.0, 0.0, 0.0]]])
        out = F.scaled_dot_product_attention(q, k, v)
        assert np.allclose(out, 0.5 * (v[:, :1] + v[:, 1:2]))
