"""Tests for the content-hash result cache and the stable digests behind it."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    CONSERVATIVE_PRESET,
    PruningStrategy,
    prune_tensor,
    stable_digest,
    tensor_digest,
)
from repro.service import ResultCache
from repro.service.workers import job_digest


class TestStableDigest:
    def test_deterministic_across_calls(self):
        value = {"seed": 0, "models": ["ResNet-50", "ViT-Small"], "beta": 0.2}
        assert stable_digest(value) == stable_digest(dict(value))

    def test_dict_insertion_order_is_irrelevant(self):
        assert stable_digest({"a": 1, "b": 2}) == stable_digest({"b": 2, "a": 1})

    def test_type_tags_prevent_cross_type_collisions(self):
        assert stable_digest(1) != stable_digest("1")
        assert stable_digest(1) != stable_digest(1.0)
        assert stable_digest(True) != stable_digest(1)
        assert stable_digest(None) != stable_digest("None")
        assert stable_digest([1, 2]) != stable_digest((1, 2))

    def test_nested_structure_matters(self):
        assert stable_digest(["ab", "c"]) != stable_digest(["a", "bc"])
        assert stable_digest({"a": {"b": 1}}) != stable_digest({"a": {"b": 2}})

    def test_ndarray_contents_shape_and_dtype(self, fresh_rng):
        array = fresh_rng.integers(-128, 128, size=(8, 16))
        assert tensor_digest(array) == tensor_digest(array.copy())
        assert tensor_digest(array) != tensor_digest(array.reshape(16, 8))
        assert tensor_digest(array) != tensor_digest(array.astype(np.int32))
        perturbed = array.copy()
        perturbed[0, 0] += 1
        assert tensor_digest(array) != tensor_digest(perturbed)

    def test_non_contiguous_array_equals_contiguous_copy(self, fresh_rng):
        array = fresh_rng.integers(0, 100, size=(10, 10))
        assert tensor_digest(array[::2, ::2]) == tensor_digest(array[::2, ::2].copy())

    def test_enums_and_dataclasses_hash(self):
        assert stable_digest(PruningStrategy.ZERO_POINT_SHIFT) != stable_digest(
            PruningStrategy.ROUNDED_AVERAGE
        )
        assert stable_digest(CONSERVATIVE_PRESET) == stable_digest(CONSERVATIVE_PRESET)

    def test_unsupported_type_raises(self):
        with pytest.raises(TypeError):
            stable_digest(object())

    def test_pruned_tensor_content_digest_is_stable(self, int8_matrix):
        first = prune_tensor(int8_matrix, 4, PruningStrategy.ZERO_POINT_SHIFT)
        second = prune_tensor(int8_matrix.copy(), 4, PruningStrategy.ZERO_POINT_SHIFT)
        assert first.content_digest() == second.content_digest()
        other = prune_tensor(int8_matrix, 2, PruningStrategy.ZERO_POINT_SHIFT)
        assert first.content_digest() != other.content_digest()

    def test_job_digest_separates_type_and_params(self):
        assert job_digest("figure1", {"seed": 0}) != job_digest("figure3", {"seed": 0})
        assert job_digest("figure1", {"seed": 0}) != job_digest("figure1", {"seed": 1})
        assert job_digest("figure1", {"seed": 0}) == job_digest("figure1", {"seed": 0})


class TestResultCache:
    def test_miss_then_hit(self):
        cache = ResultCache(max_entries=4)
        assert cache.get("k") is None
        cache.put("k", {"x": 1})
        assert cache.get("k") == {"x": 1}
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1 and stats["stores"] == 1

    def test_lru_eviction_order(self):
        cache = ResultCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh "a": "b" becomes LRU
        cache.put("c", 3)
        assert "b" not in cache
        assert cache.get("a") == 1 and cache.get("c") == 3
        assert cache.stats()["evictions"] == 1

    def test_put_existing_key_does_not_evict(self):
        cache = ResultCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # overwrite, still 2 entries
        assert len(cache) == 2
        assert cache.get("a") == 10 and cache.get("b") == 2
        assert cache.stats()["evictions"] == 0

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            ResultCache(max_entries=0)

    def test_disk_persistence_across_instances(self, tmp_path):
        first = ResultCache(max_entries=4, directory=tmp_path)
        first.put("key1", {"rows": [1, 2, 3], "table": "t"})
        reopened = ResultCache(max_entries=4, directory=tmp_path)
        assert reopened.get("key1") == {"rows": [1, 2, 3], "table": "t"}
        stats = reopened.stats()
        assert stats["disk_hits"] == 1 and stats["persistent"]

    def test_disk_backfill_after_eviction(self, tmp_path):
        cache = ResultCache(max_entries=1, directory=tmp_path)
        cache.put("a", 1)
        cache.put("b", 2)  # evicts "a" from memory, file remains
        assert "a" not in cache
        assert cache.get("a") == 1  # reloaded from disk
        assert cache.stats()["disk_hits"] == 1

    def test_clear_keeps_disk(self, tmp_path):
        cache = ResultCache(max_entries=4, directory=tmp_path)
        cache.put("a", [1])
        cache.clear()
        assert len(cache) == 0
        assert cache.get("a") == [1]


class TestNoneValues:
    """A result of None is a value, not an absence (regression: a scenario
    returning None could never cache-hit and was recomputed every time)."""

    def test_cached_none_is_a_hit_with_sentinel_default(self):
        from repro.core.cache import MISSING

        cache = ResultCache(max_entries=4)
        assert cache.get("k", MISSING) is MISSING
        cache.put("k", None)
        assert cache.get("k", MISSING) is None
        assert cache.stats()["hits"] == 1

    def test_cached_none_survives_disk_round_trip(self, tmp_path):
        from repro.core.cache import MISSING

        first = ResultCache(max_entries=4, directory=tmp_path)
        first.put("k", None)
        reopened = ResultCache(max_entries=4, directory=tmp_path)
        assert reopened.get("k", MISSING) is None
        assert reopened.stats()["disk_hits"] == 1

    def test_missing_sentinel_is_exported_by_service_shim(self):
        from repro.core.cache import MISSING as core_missing
        from repro.service import MISSING as service_missing

        assert service_missing is core_missing


class TestBestEffortPersistence:
    """Disk persistence must never fail a successfully computed result
    (regression: a non-JSON value raised after the in-memory store, failing
    the job and leaking the temp file)."""

    def test_unserializable_value_still_cached_in_memory(self, tmp_path):
        cache = ResultCache(max_entries=4, directory=tmp_path)
        value = {"handle": object()}  # not JSON-serializable
        cache.put("k", value)  # must not raise
        assert cache.get("k") is value
        assert cache.stats()["disk_errors"] == 1

    def test_failed_disk_write_leaves_no_tmp_file(self, tmp_path):
        cache = ResultCache(max_entries=4, directory=tmp_path)
        cache.put("bad", {"handle": object()})
        cache.put("good", {"x": 1})
        leftovers = [path.name for path in tmp_path.iterdir()]
        assert leftovers == ["good.json"], f"unexpected files: {leftovers}"

    def test_unserializable_value_not_readable_after_restart(self, tmp_path):
        from repro.core.cache import MISSING

        cache = ResultCache(max_entries=4, directory=tmp_path)
        cache.put("k", {"handle": object()})
        reopened = ResultCache(max_entries=4, directory=tmp_path)
        assert reopened.get("k", MISSING) is MISSING
