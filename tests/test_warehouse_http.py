"""HTTP and end-to-end tests for the ``/v1/results`` analytics surface.

Pins the PR's acceptance path: a two-node dispatched campaign followed by
``repro warehouse ingest`` answers the same metric-filtered query with
identical rows through the CLI query layer and ``GET /v1/results``, and
re-running ingest adds zero rows.  Also pins the envelope conventions —
pagination shaped like ``GET /v1/jobs``, 400 JSON envelopes for bad filter
parameters, 404 for unknown digests, and 503 when no warehouse is wired.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.parse
import urllib.request

import pytest

from repro import warehouse
from repro.campaign import parse_spec
from repro.campaign.dispatch import CampaignDispatcher
from repro.service import create_server
from repro.service.client import ServiceClient, ServiceUnavailable

#: Four fast deterministic codec cells dispatched across the two nodes.
SPEC = {
    "name": "wh-dispatch",
    "grids": [
        {
            "name": "codecs",
            "scenario": "codec_compress",
            "params": {"rows": 16, "cols": 32, "seed": 0},
            "sweep": {"codec": ["prune", "ptq"], "scale": [1.0, 2.0]},
        }
    ],
}

#: The metric-filtered question the acceptance criteria pose.
WHERE = ["codec=prune", "metrics.effective_bits<40"]


def get(base: str, path: str) -> tuple[int, dict]:
    try:
        with urllib.request.urlopen(base + path) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def fast_client(url, **kwargs):
    kwargs.setdefault("retries", 1)
    kwargs.setdefault("backoff", 0.01)
    return ServiceClient(url, **kwargs)


@pytest.fixture(scope="module")
def fleet():
    """Two compute nodes for the dispatched campaign (no warehouse)."""
    servers = []
    for _ in range(2):
        server = create_server(port=0, max_workers=2)
        threading.Thread(target=server.serve_forever, daemon=True).start()
        servers.append(server)
    yield [f"http://127.0.0.1:{server.port}" for server in servers]
    for server in servers:
        server.close()


@pytest.fixture(scope="module")
def warehouse_db(fleet, tmp_path_factory):
    """Dispatch the campaign over both nodes, then ingest the run dir."""
    root = tmp_path_factory.mktemp("wh-dispatch")
    run_dir = root / "run"
    dispatcher = CampaignDispatcher(
        parse_spec(SPEC), fleet, run_dir,
        poll_interval=0.02, client_factory=fast_client,
    )
    stats = dispatcher.run()
    assert stats["report_written"] and stats["failed"] == 0

    db = root / "warehouse.sqlite"
    conn = warehouse.connect(db)
    first = warehouse.ingest_run_dir(conn, run_dir)
    assert first.inserted == 4 and first.invalid == 0
    second = warehouse.ingest_run_dir(conn, run_dir)  # idempotent re-ingest
    assert second.inserted == 0 and second.duplicates == 4
    conn.close()
    return db


@pytest.fixture(scope="module")
def results_server(warehouse_db):
    server = create_server(port=0, warehouse_path=str(warehouse_db))
    threading.Thread(target=server.serve_forever, daemon=True).start()
    yield server
    server.close()


@pytest.fixture(scope="module")
def base(results_server):
    return f"http://127.0.0.1:{results_server.port}"


class TestDispatchedCampaignAcceptance:
    def test_cli_query_layer_and_http_answer_identically(self, warehouse_db, base):
        conn = warehouse.connect_readonly(warehouse_db)
        try:
            cli_rows, cli_total = warehouse.query_cells(
                conn, warehouse.parse_filters(WHERE), sort="metrics.mse"
            )
        finally:
            conn.close()

        query = urllib.parse.urlencode(
            [("where", w) for w in WHERE] + [("sort", "metrics.mse")]
        )
        status, envelope = get(base, f"/v1/results?{query}")
        assert status == 200
        assert envelope["total"] == cli_total == 2
        assert envelope["results"] == json.loads(json.dumps(cli_rows))

    def test_service_client_results_matches_http(self, base):
        client = fast_client(base)
        envelope = client.results(where=WHERE, sort="metrics.mse")
        query = urllib.parse.urlencode(
            [("where", w) for w in WHERE] + [("sort", "metrics.mse")]
        )
        assert envelope == get(base, f"/v1/results?{query}")[1]
        digest = envelope["results"][0]["digest"]
        detail = client.result_detail(digest)
        assert detail["digest"] == digest
        assert detail["metrics"]["metrics.mse"] == envelope["results"][0]["metrics.mse"]


class TestResultsEnvelope:
    def test_pagination_envelope_matches_jobs_conventions(self, base):
        status, envelope = get(base, "/v1/results?offset=1&limit=2")
        assert status == 200
        # The same four keys GET /v1/jobs answers with, rows under "results".
        assert set(envelope) == {"results", "total", "offset", "limit"}
        assert envelope["total"] == 4
        assert len(envelope["results"]) == 2
        assert envelope["offset"] == 1 and envelope["limit"] == 2

    def test_window_beyond_total_is_empty_not_an_error(self, base):
        status, envelope = get(base, "/v1/results?offset=99")
        assert status == 200
        assert envelope["results"] == [] and envelope["total"] == 4

    def test_columns_restriction(self, base):
        status, envelope = get(base, "/v1/results?columns=digest,codec")
        assert status == 200
        assert all(set(row) == {"digest", "codec"} for row in envelope["results"])

    @pytest.mark.parametrize(
        "query",
        [
            "where=bogus",
            "where=a%3D%7B%22b%22%3A1%7D",  # JSON-container value
            "offset=-1",
            "limit=nope",
            "order=sideways",
            "columns=%20",
            "frobnicate=1",
        ],
    )
    def test_bad_parameters_answer_400_envelopes(self, base, query):
        status, body = get(base, f"/v1/results?{query}")
        assert status == 400
        assert isinstance(body["error"], str) and body["error"]

    def test_unknown_digest_is_404(self, base):
        status, body = get(base, "/v1/results/no-such-digest")
        assert status == 404
        assert "no-such-digest" in body["error"]

    def test_detail_includes_payloads_and_metrics(self, base):
        digest = get(base, "/v1/results")[1]["results"][0]["digest"]
        status, detail = get(base, f"/v1/results/{digest}")
        assert status == 200
        assert detail["campaign"] == "wh-dispatch"
        assert isinstance(detail["params"], dict)
        assert isinstance(detail["result"], dict)
        assert "metrics.mse" in detail["metrics"]

    def test_results_is_v1_only(self, base):
        # The unversioned legacy surface is frozen; /results never joins it.
        status, _ = get(base, "/results")
        assert status == 404


class TestUnconfiguredWarehouse:
    def test_answers_503_envelope(self, fleet):
        status, body = get(fleet[0], "/v1/results")
        assert status == 503
        assert "warehouse" in body["error"]

    def test_missing_database_file_answers_503(self, tmp_path):
        server = create_server(port=0, warehouse_path=str(tmp_path / "none.sqlite"))
        threading.Thread(target=server.serve_forever, daemon=True).start()
        try:
            status, body = get(f"http://127.0.0.1:{server.port}", "/v1/results")
            assert status == 503
            assert "ingest" in body["error"]
        finally:
            server.close()

    def test_client_treats_503_as_unavailable(self, fleet):
        # 503 is in the client's retryable set, so an unconfigured warehouse
        # surfaces as ServiceUnavailable once retries are exhausted.
        client = fast_client(fleet[0])
        with pytest.raises(ServiceUnavailable):
            client.results()
