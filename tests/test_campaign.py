"""Campaign engine tests: spec expansion, resumable execution, aggregation.

The resume tests pin the PR's core guarantee: a campaign interrupted after N
of M cells and resumed produces an aggregate report *byte-identical* to an
uninterrupted run, while the already-checkpointed cells are never recomputed.
"""

from __future__ import annotations

import json

import pytest

from repro.campaign import (
    CampaignRunError,
    CampaignRunner,
    CampaignSpecError,
    expand_spec,
    load_spec,
    parse_spec,
    report_csv,
    run_campaign,
)
from repro.eval.reporting import flatten_scalars, rows_to_csv, summarize_rows
from repro.service.registry import build_default_registry


#: Two tiny grids (4 + 2 = 6 cells, all sub-second) forming a two-stage DAG.
SPEC = {
    "name": "unit",
    "description": "tiny campaign for the unit tests",
    "grids": [
        {
            "name": "pruning",
            "scenario": "prune_tensor",
            "params": {"rows": 16, "cols": 64, "seed": 0, "group_size": 16},
            "sweep": {
                "num_columns": [2, 4],
                "strategy": ["rounded_average", "zero_point_shift"],
            },
        },
        {
            "name": "quant",
            "scenario": "quantize_tensor",
            "params": {"rows": 16, "cols": 64, "backend": "microscaling"},
            "sweep": {"bits": [4, 6]},
            "depends_on": ["pruning"],
        },
    ],
}


@pytest.fixture(scope="module")
def registry():
    return build_default_registry()


@pytest.fixture(scope="module")
def plan(registry):
    return expand_spec(parse_spec(SPEC), registry=registry)


# --------------------------------------------------------------------------- #
# Spec parsing and expansion
# --------------------------------------------------------------------------- #


class TestSpec:
    def test_expansion_is_deterministic(self, registry):
        spec = parse_spec(SPEC)
        first = expand_spec(spec, registry=registry)
        second = expand_spec(spec, registry=registry)
        assert [job.digest for job in first.jobs] == [job.digest for job in second.jobs]
        assert first.spec_digest() == second.spec_digest()

    def test_cell_count_and_order(self, plan):
        assert len(plan.jobs) == 6
        assert [job.cell for job in plan.jobs[:4]] == [
            "pruning/0", "pruning/1", "pruning/2", "pruning/3",
        ]
        # Axes sweep in sorted key order: num_columns is the outer axis.
        assert plan.jobs[0].params["num_columns"] == 2
        assert plan.jobs[2].params["num_columns"] == 4
        assert plan.stage_order == ("pruning", "quant")

    def test_params_canonicalized_against_registry_defaults(self, plan, registry):
        # Defaults (e.g. beta/scale for prune_tensor) are folded in before
        # hashing, exactly like WorkerPool.submit canonicalizes jobs.
        job = plan.jobs[0]
        defaults = registry.get("prune_tensor").defaults
        assert set(defaults) <= set(job.params)

    def test_shards_partition_every_grid(self, plan):
        shards = [plan.shard(i, 3) for i in range(3)]
        digests = [d for shard in shards for d in (j.digest for j in shard.jobs)]
        assert sorted(digests) == sorted(job.digest for job in plan.jobs)
        for shard in shards:  # round-robin per grid, not over the flat list
            assert any(job.grid == "pruning" for job in shard.jobs)

    @pytest.mark.parametrize(
        "mutate, match",
        [
            (lambda s: s.pop("grids"), "non-empty 'grids'"),
            (lambda s: s["grids"][0].pop("scenario"), "scenario"),
            (lambda s: s["grids"][0]["sweep"].update(num_columns=[]), "non-empty list"),
            (lambda s: s["grids"][0]["params"].update(num_columns=2), "both fixed"),
            (lambda s: s["grids"][1].update(depends_on=["nope"]), "unknown grid"),
            (lambda s: s["grids"][1].update(name="pruning"), "duplicate grid names"),
            (lambda s: s["grids"][0].update(scenario="campaign"), "nested"),
            (lambda s: s["grids"][0].update(typo=1), "unknown field"),
        ],
    )
    def test_malformed_specs_fail_loudly(self, mutate, match):
        raw = json.loads(json.dumps(SPEC))
        mutate(raw)
        with pytest.raises(CampaignSpecError, match=match):
            parse_spec(raw)

    def test_path_escaping_spec_names_are_rejected(self):
        # The name seeds the default run-dir path (runs/<name>-<digest>).
        for bad in ("../../tmp/x", "a/b", ".hidden", ""):
            raw = json.loads(json.dumps(SPEC))
            raw["name"] = bad
            with pytest.raises(CampaignSpecError, match="name"):
                parse_spec(raw)

    def test_dependency_cycles_are_rejected(self):
        raw = json.loads(json.dumps(SPEC))
        raw["grids"][0]["depends_on"] = ["quant"]
        with pytest.raises(CampaignSpecError, match="cycle"):
            parse_spec(raw)

    def test_unknown_scenario_and_param_rejected_at_expansion(self, registry):
        raw = json.loads(json.dumps(SPEC))
        raw["grids"][0]["scenario"] = "no_such_scenario"
        with pytest.raises(CampaignSpecError, match="no_such_scenario"):
            expand_spec(parse_spec(raw), registry=registry)
        raw = json.loads(json.dumps(SPEC))
        raw["grids"][0]["params"]["not_a_param"] = 1
        with pytest.raises(CampaignSpecError, match="not_a_param"):
            expand_spec(parse_spec(raw), registry=registry)

    def test_example_specs_are_valid(self, registry):
        for name in (
            "campaign_smoke.json",
            "campaign_quant_backends.json",
            "campaign_accelerator_sweep.json",
        ):
            plan = expand_spec(load_spec(f"examples/{name}"), registry=registry)
            assert len(plan.jobs) > 0


# --------------------------------------------------------------------------- #
# Aggregation helpers
# --------------------------------------------------------------------------- #


class TestAggregationHelpers:
    def test_flatten_scalars(self):
        flat = flatten_scalars({"a": {"b": [1, 2]}, "c": None, "d": 1.5})
        assert flat == {"a.b.0": 1, "a.b.1": 2, "c": None, "d": 1.5}

    def test_rows_to_csv_aligns_heterogeneous_rows(self):
        text = rows_to_csv([{"a": 1, "b": "x,y"}, {"b": 'say "hi"', "c": 2}])
        lines = text.splitlines()
        assert lines[0] == "a,b,c"
        assert lines[1] == '1,"x,y",'
        assert lines[2] == ',"say ""hi""",2'

    def test_summarize_rows_skips_non_numeric_and_bools(self):
        summary = summarize_rows([{"x": 1.0, "ok": True, "s": "t"}, {"x": 3.0}])
        assert summary == {"x": {"count": 2, "min": 1.0, "mean": 2.0, "max": 3.0}}

    def test_rows_to_csv_round_trips_awkward_values(self):
        # Commas, embedded newlines, bare carriage returns, quotes, and None
        # must all survive csv.reader round-tripping.  The bare "\r" case is
        # the regression: with lineterminator="\n" the minimal-quoting writer
        # left it unquoted, producing CSV csv.reader refuses to parse.
        import csv
        import io

        rows = [
            {"a": "x,y", "b": "line1\nline2", "c": "cr\rhere", "d": 'say "hi"'},
            {"a": None, "b": 0.5, "c": "", "d": "plain"},
        ]
        text = rows_to_csv(rows)
        parsed = list(csv.reader(io.StringIO(text)))
        assert parsed[0] == ["a", "b", "c", "d"]
        assert parsed[1] == ["x,y", "line1\nline2", "cr\rhere", 'say "hi"']
        assert parsed[2] == ["", "0.5", "", "plain"]

    def test_rows_to_csv_plain_rows_are_unchanged(self):
        # The "\r" fallback must not alter the bytes of ordinary reports.
        assert rows_to_csv([{"a": 1, "b": "x"}]) == "a,b\n1,x\n"

    def test_report_csv_round_trips_awkward_metric_values(self):
        # Through the campaign report path: a cell whose result carries
        # awkward strings still yields report.csv that csv.reader can parse.
        import csv
        import io

        report = {
            "cells": [
                {
                    "cell": "g/0",
                    "grid": "g",
                    "scenario": "s",
                    "digest": "d0",
                    "params": {"label": "a,b"},
                    "result": {"note": 'x\nand "more"\rtext', "mse": None},
                }
            ]
        }
        parsed = list(csv.reader(io.StringIO(report_csv(report))))
        record = dict(zip(parsed[0], parsed[1], strict=True))
        assert record["params.label"] == "a,b"
        assert record["result.note"] == 'x\nand "more"\rtext'
        assert record["result.mse"] == ""


# --------------------------------------------------------------------------- #
# Execution, checkpointing, resume
# --------------------------------------------------------------------------- #


def run_full(tmp_path, name, **kwargs):
    runner = CampaignRunner(parse_spec(SPEC), tmp_path / name, **kwargs)
    runner.run()
    return runner


class TestRunner:
    def test_full_run_writes_report_and_checkpoints(self, tmp_path):
        runner = run_full(tmp_path, "full", jobs=2)
        stats = runner.stats
        assert stats["executed"] == 6 and stats["report_written"]
        assert len(list((runner.run_dir / "results").glob("*.json"))) == 6
        report = json.loads((runner.run_dir / "report.json").read_text())
        assert report["total_cells"] == 6
        assert [cell["cell"] for cell in report["cells"]][:2] == ["pruning/0", "pruning/1"]
        # Every cell carries its provenance digest and it matches the plan.
        by_cell = {job.cell: job.digest for job in runner.plan.jobs}
        for cell in report["cells"]:
            assert cell["digest"] == by_cell[cell["cell"]]
        csv_text = (runner.run_dir / "report.csv").read_text()
        assert csv_text == report_csv(report)
        assert len(csv_text.splitlines()) == 7  # header + 6 cells

    def test_interrupt_resume_is_byte_identical_and_skips_completed(self, tmp_path):
        reference = run_full(tmp_path, "reference", jobs=1)

        interrupted = CampaignRunner(parse_spec(SPEC), tmp_path / "resumed", max_jobs=4)
        stats = interrupted.run()
        assert stats["interrupted"] and stats["executed"] == 4
        assert not (tmp_path / "resumed" / "report.json").exists()

        resumed = CampaignRunner.resume(tmp_path / "resumed", jobs=2)
        stats = resumed.run()
        # The 4 checkpointed cells are skipped, only the remaining 2 run.
        assert stats["executed"] == 2
        assert stats["skipped_checkpointed"] == 4
        assert stats["pool"]["executed"] == 2  # worker pool never saw the rest
        assert stats["report_written"]

        assert (
            (tmp_path / "resumed" / "report.json").read_bytes()
            == (reference.run_dir / "report.json").read_bytes()
        )
        assert (
            (tmp_path / "resumed" / "report.csv").read_bytes()
            == (reference.run_dir / "report.csv").read_bytes()
        )

    def test_resume_on_complete_run_recomputes_nothing(self, tmp_path):
        runner = run_full(tmp_path, "noop", jobs=1)
        again = CampaignRunner.resume(runner.run_dir)
        stats = again.run()
        assert stats["executed"] == 0
        assert stats["skipped_checkpointed"] == 6
        assert stats["pool"]["executed"] == 0

    def test_sharded_runs_combine_into_identical_report(self, tmp_path):
        reference = run_full(tmp_path, "unsharded")
        spec = parse_spec(SPEC)
        for index in range(2):
            CampaignRunner(
                spec, tmp_path / "sharded", shard_index=index, shard_count=2
            ).run()
        assert (
            (tmp_path / "sharded" / "report.json").read_bytes()
            == (reference.run_dir / "report.json").read_bytes()
        )

    def test_changed_spec_in_same_run_dir_is_rejected(self, tmp_path):
        runner = run_full(tmp_path, "dir")
        changed = json.loads(json.dumps(SPEC))
        changed["grids"][0]["params"]["seed"] = 99
        with pytest.raises(CampaignSpecError, match="different campaign"):
            CampaignRunner(parse_spec(changed), runner.run_dir).run()

    def test_failed_cells_raise_but_keep_checkpoints(self, tmp_path):
        raw = json.loads(json.dumps(SPEC))
        # rows=-1 makes every cell of the second grid fail validation.
        raw["grids"][1]["params"]["rows"] = -1
        runner = CampaignRunner(parse_spec(raw), tmp_path / "failing")
        with pytest.raises(CampaignRunError, match="campaign cell"):
            runner.run()
        assert runner.stats["failed"] == 2
        # The healthy first grid is fully checkpointed for a later resume.
        assert len(list((runner.run_dir / "results").glob("*.json"))) == 4

    def test_dependent_grid_waits_for_failed_dependency(self, tmp_path):
        raw = json.loads(json.dumps(SPEC))
        raw["grids"][0]["params"]["rows"] = -1  # first grid fails
        runner = CampaignRunner(parse_spec(raw), tmp_path / "dep")
        with pytest.raises(CampaignRunError):
            runner.run()
        # The dependent quant grid never dispatched.
        assert runner.stats["executed"] == 0
        assert len(list((runner.run_dir / "results").glob("*.json"))) == 0


# --------------------------------------------------------------------------- #
# Service and registry integration
# --------------------------------------------------------------------------- #


class TestCampaignScenario:
    def test_registry_campaign_scenario_returns_report(self, registry):
        report = registry.run("campaign", {"spec": SPEC})
        assert report["campaign"] == "unit"
        assert report["total_cells"] == 6
        json.dumps(report, allow_nan=False)  # strict JSON

    def test_run_campaign_matches_runner_output(self, tmp_path, registry):
        report = run_campaign(SPEC, jobs=2)
        runner = run_full(tmp_path, "cmp")
        assert report == runner.build_report()

    def test_registry_campaign_rejects_non_dict_spec(self, registry):
        with pytest.raises(ValueError, match="spec"):
            registry.run("campaign", {"spec": "not-a-dict"})

    def test_quantize_tensor_backends_report_uniform_metrics(self, registry):
        for backend in ("ant", "bitflip", "microscaling", "noisyquant", "olive", "ptq"):
            result = registry.run(
                "quantize_tensor", {"backend": backend, "rows": 16, "cols": 64}
            )
            assert result["backend"] == backend
            assert result["mse"] >= 0.0
            assert result["effective_bits"] > 0.0

    def test_quantize_tensor_bitflip_respects_word_width(self, registry):
        # The swept 'bits' axis must change the bitflip computation, not just
        # the report label (it sets the PTQ word width being column-pruned).
        params = {"backend": "bitflip", "rows": 16, "cols": 64, "num_columns": 2}
        narrow = registry.run("quantize_tensor", {**params, "bits": 4})
        wide = registry.run("quantize_tensor", {**params, "bits": 8})
        assert narrow["effective_bits"] < wide["effective_bits"]
        assert narrow["mse"] != wide["mse"]

    def test_quantize_tensor_rejects_bad_inputs(self, registry):
        with pytest.raises(ValueError, match="backend"):
            registry.run("quantize_tensor", {"backend": "fp4"})
        with pytest.raises(ValueError, match="scale"):
            registry.run("quantize_tensor", {"scale": 0.0})


# --------------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------------- #


class TestCampaignCli:
    def test_run_interrupt_resume_report_round_trip(self, tmp_path, capsys):
        from repro.cli import main

        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(SPEC))
        run_dir = tmp_path / "run"

        assert main([
            "campaign", "run", str(spec_path),
            "--run-dir", str(run_dir), "--max-jobs", "3",
        ]) == 0
        assert "resume" in capsys.readouterr().out

        assert main(["campaign", "resume", str(run_dir), "--jobs", "2"]) == 0
        assert "report" in capsys.readouterr().out

        assert main(["campaign", "report", str(run_dir), "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["total_cells"] == 6

    def test_report_on_incomplete_run_fails(self, tmp_path, capsys):
        from repro.cli import main

        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(SPEC))
        run_dir = tmp_path / "partial"
        assert main([
            "campaign", "run", str(spec_path),
            "--run-dir", str(run_dir), "--max-jobs", "1",
        ]) == 0
        assert main(["campaign", "report", str(run_dir)]) == 1
        assert "incomplete" in capsys.readouterr().err

    def test_bad_spec_path_is_an_error_not_a_traceback(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["campaign", "run", str(tmp_path / "missing.json")]) == 1
        assert "error" in capsys.readouterr().err
