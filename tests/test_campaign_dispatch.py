"""Tests for federated campaign dispatch across remote serve nodes.

The load-bearing property: a campaign dispatched over N nodes — including
after node loss and across resume boundaries — produces ``report.json`` /
``report.csv`` byte-identical to the same campaign run locally.
"""

from __future__ import annotations

import threading

import pytest

from repro.campaign import CampaignRunner, parse_spec
from repro.campaign.dispatch import CampaignDispatcher, DispatchError
from repro.service import create_server
from repro.service.client import ServiceClient, ServiceUnavailable

#: Six fast deterministic cells across a two-grid DAG.
SPEC = {
    "name": "dispatch-test",
    "grids": [
        {
            "name": "quant",
            "scenario": "quantize_tensor",
            "params": {"rows": 16, "cols": 64, "backend": "ptq"},
            "sweep": {"bits": [4, 6, 8]},
        },
        {
            "name": "prune",
            "scenario": "prune_tensor",
            "params": {"rows": 32, "cols": 128},
            "sweep": {"num_columns": [2, 4, 6]},
            "depends_on": ["quant"],
        },
    ],
}


@pytest.fixture(scope="module")
def fleet():
    servers = []
    threads = []
    for _ in range(2):
        server = create_server(port=0, max_workers=2)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        servers.append(server)
        threads.append(thread)
    yield [f"http://127.0.0.1:{server.port}" for server in servers]
    for server, thread in zip(servers, threads, strict=False):
        server.close()
        thread.join(timeout=10)


@pytest.fixture(scope="module")
def local_reports(tmp_path_factory):
    """The reference run: the same campaign executed by the local runner."""
    run_dir = tmp_path_factory.mktemp("local-reference")
    runner = CampaignRunner(parse_spec(SPEC), run_dir, jobs=2)
    runner.run()
    return (
        (run_dir / "report.json").read_bytes(),
        (run_dir / "report.csv").read_bytes(),
    )


def fast_client(url, **kwargs):
    kwargs.setdefault("retries", 1)
    kwargs.setdefault("backoff", 0.01)
    kwargs.setdefault("timeout", 30.0)
    return ServiceClient(url, **kwargs)


class TestTwoNodeDispatch:
    def test_report_is_byte_identical_to_local_run(self, fleet, local_reports, tmp_path):
        dispatcher = CampaignDispatcher(
            parse_spec(SPEC), fleet, tmp_path / "run",
            poll_interval=0.02, client_factory=fast_client,
        )
        stats = dispatcher.run()
        assert stats["report_written"] and stats["failed"] == 0
        assert stats["executed"] + stats["skipped_checkpointed"] == 6
        assert (tmp_path / "run/report.json").read_bytes() == local_reports[0]
        assert (tmp_path / "run/report.csv").read_bytes() == local_reports[1]

    def test_dispatch_resumes_from_checkpoints(self, fleet, local_reports, tmp_path):
        run_dir = tmp_path / "resumable"
        spec = parse_spec(SPEC)
        # Partially complete the campaign locally (2 cells), then dispatch
        # the remainder into the same run directory.
        partial = CampaignRunner(spec, run_dir, jobs=1, max_jobs=2)
        stats = partial.run()
        assert stats["interrupted"] and stats["executed"] == 2

        dispatcher = CampaignDispatcher(
            spec, fleet, run_dir, poll_interval=0.02, client_factory=fast_client
        )
        stats = dispatcher.run()
        assert stats["skipped_checkpointed"] == 2
        assert stats["executed"] == 4
        assert stats["report_written"]
        assert (run_dir / "report.json").read_bytes() == local_reports[0]
        assert (run_dir / "report.csv").read_bytes() == local_reports[1]

    def test_dispatch_tolerates_dead_node_at_start(self, fleet, local_reports, tmp_path):
        endpoints = ["http://127.0.0.1:1", *fleet]  # port 1: connection refused
        dispatcher = CampaignDispatcher(
            parse_spec(SPEC), endpoints, tmp_path / "run",
            poll_interval=0.02, client_factory=fast_client,
        )
        stats = dispatcher.run()
        assert stats["report_written"]
        dead = next(n for n in stats["nodes"] if n["url"] == "http://127.0.0.1:1")
        assert not dead["alive"] and dead["completed"] == 0
        assert (tmp_path / "run/report.json").read_bytes() == local_reports[0]


class TestNodeLossMidRun:
    def test_cells_reassign_when_a_node_dies_mid_run(self, fleet, local_reports, tmp_path):
        dying_url = fleet[1]
        state = {"completed": 0}

        def flaky_factory(url, **kwargs):
            client = fast_client(url, **kwargs)
            if url != dying_url:
                return client
            real_result, real_job, real_submit = client.result, client.job, client.submit

            def result(job_id):
                record = real_result(job_id)
                state["completed"] += 1
                return record

            def dead_after_first(method):
                def inner(*args, **kw):
                    if state["completed"] >= 1:
                        raise ServiceUnavailable(url, 1, "simulated node loss")
                    return method(*args, **kw)
                return inner

            client.result = dead_after_first(result)
            client.job = dead_after_first(real_job)
            client.submit = dead_after_first(real_submit)
            return client

        dispatcher = CampaignDispatcher(
            parse_spec(SPEC), fleet, tmp_path / "run",
            poll_interval=0.02, client_factory=flaky_factory,
        )
        stats = dispatcher.run()
        assert stats["report_written"] and stats["failed"] == 0
        lost = next(n for n in stats["nodes"] if n["url"] == dying_url)
        survivor = next(n for n in stats["nodes"] if n["url"] != dying_url)
        assert not lost["alive"] and "simulated node loss" in lost["reason"]
        assert survivor["alive"]
        # The killed node's outstanding cells all landed on the survivor and
        # the merged report is still byte-identical to the local run.
        assert stats["executed"] + stats["skipped_checkpointed"] == 6
        assert (tmp_path / "run/report.json").read_bytes() == local_reports[0]
        assert (tmp_path / "run/report.csv").read_bytes() == local_reports[1]

    def test_all_nodes_dead_raises_dispatch_error(self, tmp_path):
        dispatcher = CampaignDispatcher(
            parse_spec(SPEC),
            ["http://127.0.0.1:1", "http://127.0.0.1:2"],
            tmp_path / "run",
            client_factory=lambda url, **kw: ServiceClient(url, retries=0, backoff=0.0),
        )
        with pytest.raises(DispatchError, match="no reachable service node"):
            dispatcher.run()
        # The run directory is prepared, so a later dispatch/run can resume.
        assert (tmp_path / "run" / "manifest.json").is_file()

    def test_registry_skew_refuses_the_node(self, fleet, local_reports, tmp_path):
        skewed_url = fleet[0]

        def skewed_factory(url, **kwargs):
            client = fast_client(url, **kwargs)
            if url != skewed_url:
                return client
            real_submit = client.submit

            def submit(job_type, params=None, wait=None):
                record = dict(real_submit(job_type, params, wait=wait))
                record["digest"] = "0" * 64  # node disagrees on content identity
                return record

            client.submit = submit
            return client

        dispatcher = CampaignDispatcher(
            parse_spec(SPEC), fleet, tmp_path / "run",
            poll_interval=0.02, client_factory=skewed_factory,
        )
        stats = dispatcher.run()
        skewed = next(n for n in stats["nodes"] if n["url"] == skewed_url)
        assert not skewed["alive"] and "registry skew" in skewed["reason"]
        assert stats["report_written"]
        assert (tmp_path / "run/report.json").read_bytes() == local_reports[0]


class TestBackpressureAndLivelock:
    def test_saturated_node_is_not_marked_dead(self, tmp_path, local_reports):
        # One node whose queue bound is far below the dispatch window: 429s
        # are backpressure, not node loss — the dispatch must still finish.
        server = create_server(port=0, max_workers=1, max_queued=2)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            dispatcher = CampaignDispatcher(
                parse_spec(SPEC),
                [f"http://127.0.0.1:{server.port}"],
                tmp_path / "run",
                poll_interval=0.02,
                max_inflight=6,
                client_factory=lambda url, **kw: ServiceClient(
                    url, retries=1, backoff=0.01
                ),
            )
            stats = dispatcher.run()
        finally:
            server.close()
            thread.join(timeout=10)
        assert stats["report_written"]
        (node,) = stats["nodes"]
        assert node["alive"], "a busy node must never be declared dead"
        assert (tmp_path / "run/report.json").read_bytes() == local_reports[0]

    def test_persistent_result_error_fails_the_cell_not_the_loop(self, fleet, tmp_path):
        from repro.service.client import ServiceRequestError

        def poisoned_factory(url, **kwargs):
            client = fast_client(url, **kwargs)

            def result(job_id):
                raise ServiceRequestError(500, {"error": "poisoned"}, url)

            client.result = result
            return client

        from repro.campaign import CampaignRunError

        dispatcher = CampaignDispatcher(
            parse_spec(SPEC), fleet[:1], tmp_path / "run",
            poll_interval=0.01, client_factory=poisoned_factory,
        )
        with pytest.raises(CampaignRunError):
            dispatcher.run()
        assert dispatcher.stats["failed"] >= 1
        # Bounded retries, not a livelock: the run ended and recorded stats.


class TestDispatcherValidation:
    def test_requires_at_least_one_endpoint(self, tmp_path):
        with pytest.raises(ValueError, match="at least one"):
            CampaignDispatcher(parse_spec(SPEC), [], tmp_path / "run")

    def test_rejects_non_positive_window(self, tmp_path):
        with pytest.raises(ValueError, match="max_inflight"):
            CampaignDispatcher(
                parse_spec(SPEC), ["http://x"], tmp_path / "run", max_inflight=0
            )
