"""Golden-equivalence tests for the performance work of PR 2.

The batched zero-point search and the artifact memo are pure optimizations:
they must return *bit-identical* results to the original implementations.
These tests pin that property across random shapes, pruning budgets, word
widths, and degenerate inputs, using the kept reference implementation
(:func:`repro.core.zero_point_shift.zero_point_shift_groups_reference`) as
the oracle.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    PruningStrategy,
    clear_memo,
    get_memo,
    memo_disabled,
    memo_stats,
    prune_tensor,
)
from repro.core.zero_point_shift import (
    zero_point_shift_groups,
    zero_point_shift_groups_reference,
)
from repro.nn.model_zoo import get_model
from repro.nn.synthetic import synthesize_model


def assert_search_matches(groups: np.ndarray, num_columns: int, bits: int = 8) -> None:
    reference = zero_point_shift_groups_reference(groups, num_columns, bits=bits)
    fast = zero_point_shift_groups(groups, num_columns, bits=bits)
    for name, ref, new in zip(
        ("values", "num_redundant", "num_sparse", "constants"), reference, fast,
        strict=True,
    ):
        assert new.dtype == ref.dtype, name
        assert np.array_equal(new, ref), f"{name} diverged from the reference"


@st.composite
def int8_group_matrices(draw) -> np.ndarray:
    num_groups = draw(st.integers(1, 12))
    group_size = draw(st.integers(1, 24))
    flat = draw(
        st.lists(
            st.integers(-128, 127),
            min_size=num_groups * group_size,
            max_size=num_groups * group_size,
        )
    )
    return np.array(flat, dtype=np.int64).reshape(num_groups, group_size)


class TestZeroPointShiftEquivalence:
    @given(int8_group_matrices(), st.integers(0, 6))
    @settings(max_examples=120, deadline=None)
    def test_property_bit_identical_int8(self, groups, num_columns):
        assert_search_matches(groups, num_columns)

    @given(
        st.integers(5, 12),
        st.integers(0, 6),
        st.integers(1, 24),
        st.integers(1, 48),
        st.integers(0, 2**32 - 1),
    )
    @settings(max_examples=80, deadline=None)
    def test_property_bit_identical_word_widths(
        self, bits, num_columns, num_groups, group_size, seed
    ):
        hi = (1 << (bits - 1)) - 1
        rng = np.random.default_rng(seed)
        groups = rng.integers(-hi - 1, hi + 1, size=(num_groups, group_size))
        assert_search_matches(groups, num_columns, bits=bits)

    @pytest.mark.parametrize("sigma", [2.0, 24.0, 60.0])
    @pytest.mark.parametrize("num_columns", [1, 2, 4, 6])
    def test_gaussian_layers_bit_identical(self, sigma, num_columns):
        rng = np.random.default_rng(7)
        groups = np.clip(
            np.round(rng.normal(0, sigma, (512, 32))), -128, 127
        ).astype(np.int64)
        assert_search_matches(groups, num_columns)

    def test_saturated_and_constant_groups(self):
        groups = np.array(
            [
                [127] * 8,
                [-128] * 8,
                [-128, 127] * 4,
                [0] * 8,
                [-1] * 8,
                [64] * 8,
                [-1, -1, -1, -1, -1, -1, 59, -59],
            ],
            dtype=np.int64,
        )
        for num_columns in range(7):
            assert_search_matches(groups, num_columns)

    def test_out_of_word_range_inputs_fall_back_to_reference(self):
        # Garbage inputs (values beyond the declared word width) take the
        # reference path outright, so equivalence is preserved there too.
        groups = np.array([[300, -400, 5, 7]], dtype=np.int64)
        assert_search_matches(groups, 4)

    def test_empty_inputs(self):
        assert_search_matches(np.empty((0, 8), dtype=np.int64), 4)

    def test_big_layer_bit_identical_across_group_blocks(self):
        # Exceeds one group block so the chunked block loop is exercised.
        rng = np.random.default_rng(3)
        groups = np.clip(
            np.round(rng.normal(0, 24, (9000, 32))), -128, 127
        ).astype(np.int64)
        assert_search_matches(groups, 4)


class TestMemoizedCompressionEquivalence:
    @given(
        st.integers(1, 6),
        st.sampled_from([PruningStrategy.ROUNDED_AVERAGE, PruningStrategy.ZERO_POINT_SHIFT]),
        st.integers(4, 48),
        st.integers(8, 80),
        st.integers(0, 2**32 - 1),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_memoized_prune_tensor_bit_identical(
        self, num_columns, strategy, channels, reduction, seed
    ):
        rng = np.random.default_rng(seed)
        weights = np.clip(
            np.round(rng.normal(0, 24, (channels, reduction))), -128, 127
        ).astype(np.int64)
        sensitive = rng.random(channels) < 0.2

        with memo_disabled():
            cold = prune_tensor(
                weights, num_columns, strategy, group_size=16, sensitive_channels=sensitive
            )
        clear_memo()
        first = prune_tensor(
            weights, num_columns, strategy, group_size=16, sensitive_channels=sensitive
        )
        hit = prune_tensor(
            weights, num_columns, strategy, group_size=16, sensitive_channels=sensitive
        )
        for result in (first, hit):
            assert np.array_equal(result.values, cold.values)
            assert np.array_equal(result.num_redundant, cold.num_redundant)
            assert np.array_equal(result.num_sparse, cold.num_sparse)
            assert np.array_equal(result.constants, cold.constants)
            assert np.array_equal(result.pruned_channel_mask, cold.pruned_channel_mask)
            assert np.array_equal(result.original, weights)
        assert result.storage_bits() == cold.storage_bits()

    def test_hit_returns_private_arrays(self):
        clear_memo()
        weights = np.arange(-64, 64, dtype=np.int64).reshape(4, 32)
        first = prune_tensor(weights, 4, PruningStrategy.ZERO_POINT_SHIFT)
        hit = prune_tensor(weights, 4, PruningStrategy.ZERO_POINT_SHIFT)
        assert hit.values is not first.values
        hit.values[:] = 0  # mutating a hit must not poison the memo
        again = prune_tensor(weights, 4, PruningStrategy.ZERO_POINT_SHIFT)
        assert np.array_equal(again.values, first.values)

    def test_keep_original_outside_the_key(self):
        clear_memo()
        weights = np.arange(-64, 64, dtype=np.int64).reshape(4, 32)
        with_original = prune_tensor(weights, 2, PruningStrategy.ROUNDED_AVERAGE)
        without = prune_tensor(
            weights, 2, PruningStrategy.ROUNDED_AVERAGE, keep_original=False
        )
        assert memo_stats()["tensors"]["hits"] >= 1
        assert without.original is None
        assert np.array_equal(with_original.original, weights)
        assert np.array_equal(with_original.values, without.values)

    def test_distinct_configurations_do_not_collide(self):
        clear_memo()
        weights = np.arange(-64, 64, dtype=np.int64).reshape(4, 32)
        a = prune_tensor(weights, 4, PruningStrategy.ZERO_POINT_SHIFT)
        b = prune_tensor(weights, 2, PruningStrategy.ZERO_POINT_SHIFT)
        c = prune_tensor(weights, 4, PruningStrategy.ROUNDED_AVERAGE)
        d = prune_tensor(weights * 0 + 1, 4, PruningStrategy.ZERO_POINT_SHIFT)
        assert memo_stats()["tensors"]["hits"] == 0
        assert memo_stats()["tensors"]["misses"] == 4
        assert not np.array_equal(a.values, b.values) or not np.array_equal(
            b.values, c.values
        )
        del d


class TestCrossExperimentMemoization:
    def test_shared_model_compressed_exactly_once(self):
        """Two experiment passes over the same model synthesize and compress
        each distinct layer exactly once (the PR's acceptance criterion)."""
        from repro.core.global_pruning import MODERATE_PRESET, global_binary_prune

        clear_memo()
        model = get_model("ResNet-34")

        def one_experiment_pass():
            weights = synthesize_model(model, seed=0, max_channels=48, max_reduction=192)
            layer_ints = {name: lw.int_weights for name, lw in weights.items()}
            scores = {name: lw.channel_scores for name, lw in weights.items()}
            return global_binary_prune(layer_ints, scores, preset=MODERATE_PRESET)

        first = one_experiment_pass()
        after_first = memo_stats()
        second = one_experiment_pass()
        after_second = memo_stats()

        num_layers = len(first.pruned_layers)
        # Pass 1: every layer is a miss.  Pass 2: every layer is a hit, and
        # not a single new compression or synthesis happens.
        assert after_first["tensors"]["misses"] == num_layers
        assert after_second["tensors"]["misses"] == num_layers
        assert after_second["tensors"]["hits"] == num_layers
        assert after_second["models"]["hits"] == 1
        for name in first.pruned_layers:
            assert np.array_equal(
                first.pruned_layers[name].values, second.pruned_layers[name].values
            )

    def test_memo_disabled_recomputes(self):
        clear_memo()
        weights = np.arange(-64, 64, dtype=np.int64).reshape(4, 32)
        with memo_disabled():
            prune_tensor(weights, 4, PruningStrategy.ZERO_POINT_SHIFT)
            prune_tensor(weights, 4, PruningStrategy.ZERO_POINT_SHIFT)
        stats = memo_stats()["tensors"]
        assert stats["hits"] == 0 and stats["misses"] == 0 and stats["stores"] == 0
        assert get_memo().enabled  # the context manager restored the flag
