"""Unit and property tests for two's-complement / sign-magnitude bit planes."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as npst

from repro.core.bitplane import (
    column_weights,
    count_redundant_columns,
    from_bitplanes,
    from_sign_magnitude_planes,
    int_range,
    remove_redundant_columns,
    to_bitplanes,
    to_sign_magnitude_planes,
)


class TestIntRange:
    def test_eight_bit(self):
        assert int_range(8) == (-128, 127)

    def test_four_bit(self):
        assert int_range(4) == (-8, 7)

    def test_two_bit(self):
        assert int_range(2) == (-2, 1)

    def test_rejects_one_bit(self):
        with pytest.raises(ValueError):
            int_range(1)


class TestColumnWeights:
    def test_signed_msb_is_negative(self):
        weights = column_weights(8)
        assert weights[0] == -128
        assert weights[-1] == 1

    def test_unsigned(self):
        assert list(column_weights(4, signed=False)) == [8, 4, 2, 1]

    def test_signed_four_bit(self):
        assert list(column_weights(4)) == [-8, 4, 2, 1]


class TestTwosComplement:
    def test_paper_example_minus_57(self):
        planes = to_bitplanes(np.array([-57]), 8)[0]
        assert list(planes) == [1, 1, 0, 0, 0, 1, 1, 1]

    def test_paper_example_13(self):
        planes = to_bitplanes(np.array([13]), 8)[0]
        assert list(planes) == [0, 0, 0, 0, 1, 1, 0, 1]

    def test_zero(self):
        assert to_bitplanes(np.array([0]), 8).sum() == 0

    def test_minus_one_is_all_ones(self):
        assert to_bitplanes(np.array([-1]), 8).sum() == 8

    def test_extreme_values(self):
        planes = to_bitplanes(np.array([-128, 127]), 8)
        assert list(planes[0]) == [1, 0, 0, 0, 0, 0, 0, 0]
        assert list(planes[1]) == [0, 1, 1, 1, 1, 1, 1, 1]

    def test_roundtrip_full_range(self):
        values = np.arange(-128, 128)
        assert np.array_equal(from_bitplanes(to_bitplanes(values, 8)), values)

    def test_roundtrip_preserves_shape(self, int8_matrix):
        planes = to_bitplanes(int8_matrix, 8)
        assert planes.shape == int8_matrix.shape + (8,)
        assert np.array_equal(from_bitplanes(planes), int8_matrix)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            to_bitplanes(np.array([200]), 8)

    def test_rejects_float_input(self):
        with pytest.raises(TypeError):
            to_bitplanes(np.array([1.5]), 8)

    def test_other_widths(self):
        for bits in (4, 6, 12):
            lo, hi = int_range(bits)
            values = np.arange(lo, hi + 1)
            assert np.array_equal(from_bitplanes(to_bitplanes(values, bits)), values)

    @given(
        npst.arrays(
            dtype=np.int64,
            shape=npst.array_shapes(min_dims=1, max_dims=2, max_side=32),
            elements=st.integers(-128, 127),
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_property(self, values):
        assert np.array_equal(from_bitplanes(to_bitplanes(values, 8)), values)


class TestSignMagnitude:
    def test_paper_example_minus_57(self):
        planes = to_sign_magnitude_planes(np.array([-57]), 8)[0]
        assert list(planes) == [1, 0, 1, 1, 1, 0, 0, 1]

    def test_positive_has_zero_sign(self):
        planes = to_sign_magnitude_planes(np.array([57]), 8)[0]
        assert planes[0] == 0

    def test_roundtrip(self):
        values = np.arange(-127, 128)
        planes = to_sign_magnitude_planes(values, 8)
        assert np.array_equal(from_sign_magnitude_planes(planes), values)

    def test_rejects_minimum_code(self):
        with pytest.raises(ValueError):
            to_sign_magnitude_planes(np.array([-128]), 8)

    def test_rejects_float_input(self):
        with pytest.raises(TypeError):
            to_sign_magnitude_planes(np.array([0.5]), 8)

    def test_small_weights_have_more_zero_bits(self, int8_matrix):
        # The sign-magnitude representation of Gaussian-like weights is
        # sparser than two's complement (the basis of BitWave and Figure 3).
        clipped = np.where(int8_matrix == -128, -127, int8_matrix)
        twos = to_bitplanes(clipped, 8).mean()
        sign_mag = to_sign_magnitude_planes(clipped, 8).mean()
        assert sign_mag < twos

    @given(st.lists(st.integers(-127, 127), min_size=1, max_size=64))
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_property(self, values):
        array = np.array(values)
        planes = to_sign_magnitude_planes(array, 8)
        assert np.array_equal(from_sign_magnitude_planes(planes), array)


class TestRedundantColumns:
    def test_all_small_values(self):
        # Values in [-16, 15] fit in 5 bits: 3 redundant columns of an 8-bit word.
        group = to_bitplanes(np.array([3, -5, 15, -16]), 8)
        assert count_redundant_columns(group) == 3

    def test_large_value_blocks_redundancy(self):
        group = to_bitplanes(np.array([3, -5, 100]), 8)
        assert count_redundant_columns(group) == 0

    def test_paper_figure4_group(self):
        group = to_bitplanes(np.array([-11, 2, -57, 13]), 8)
        assert count_redundant_columns(group) == 1

    def test_cap(self):
        group = to_bitplanes(np.array([0, 1, -1]), 8)
        assert count_redundant_columns(group, max_redundant=3) == 3

    def test_zero_group_never_removes_all_columns(self):
        group = to_bitplanes(np.zeros(4, dtype=np.int64), 8)
        assert count_redundant_columns(group) <= 6

    def test_remove_preserves_value(self):
        values = np.array([-11, 2, -57, 13])
        group = to_bitplanes(values, 8)
        count = count_redundant_columns(group)
        reduced = remove_redundant_columns(group, count)
        assert reduced.shape == (4, 8 - count)
        assert np.array_equal(from_bitplanes(reduced), values)

    def test_remove_zero_is_copy(self):
        group = to_bitplanes(np.array([1, 2]), 8)
        out = remove_redundant_columns(group, 0)
        assert np.array_equal(out, group)
        assert out is not group

    def test_remove_too_many_raises(self):
        group = to_bitplanes(np.array([3, -5, 100]), 8)
        with pytest.raises(ValueError):
            remove_redundant_columns(group, 1)

    def test_negative_count_raises(self):
        group = to_bitplanes(np.array([1]), 8)
        with pytest.raises(ValueError):
            remove_redundant_columns(group, -1)

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            count_redundant_columns(np.zeros((2, 2, 8), dtype=np.uint8))

    @given(st.lists(st.integers(-128, 127), min_size=2, max_size=32))
    @settings(max_examples=60, deadline=None)
    def test_removal_roundtrip_property(self, values):
        array = np.array(values)
        group = to_bitplanes(array, 8)
        count = count_redundant_columns(group)
        reduced = remove_redundant_columns(group, count)
        assert np.array_equal(from_bitplanes(reduced), array)

    @given(st.lists(st.integers(-128, 127), min_size=2, max_size=32))
    @settings(max_examples=60, deadline=None)
    def test_arithmetic_and_bitplane_redundancy_agree(self, values):
        # The fast arithmetic implementation used inside Algorithm 1 must agree
        # with the definitional bit-plane implementation.
        from repro.core.rounded_average import _redundant_columns_batch as by_planes
        from repro.core.zero_point_shift import _redundant_columns_batch as by_arith

        array = np.array(values)[None, :]
        assert by_planes(array, 8)[0] == by_arith(array, 8)[0]
