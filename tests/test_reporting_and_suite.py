"""Additional coverage: result reporting, the benchmark suite, and result containers."""

from __future__ import annotations

import pytest

from repro.accelerators import ArrayConfig, StripesAccelerator
from repro.accelerators.common import LayerPerformance
from repro.eval.benchmarks import BenchmarkSuite
from repro.eval.reporting import format_table, format_value, geometric_mean, render_bar_chart
from repro.memory.hierarchy import MemoryTraffic
from repro.nn.model_zoo import get_model
from repro.nn.workloads import layer_workload


class TestFormatValue:
    def test_float_precision(self):
        assert format_value(3.14159, precision=2) == "3.14"

    def test_large_float_uses_scientific(self):
        assert "e" in format_value(123456.0)

    def test_tiny_float_uses_scientific(self):
        assert "e" in format_value(1.5e-7)

    def test_zero(self):
        assert format_value(0.0) == "0"

    def test_bool_and_string(self):
        assert format_value(True) == "True"
        assert format_value("abc") == "abc"

    def test_int(self):
        assert format_value(42) == "42"


class TestRenderBarChart:
    def test_basic_rendering(self):
        chart = render_bar_chart({"Stripes": 1.0, "BitVert": 3.0}, width=10, title="Speedup")
        lines = chart.splitlines()
        assert lines[0] == "Speedup"
        assert lines[1].startswith("Stripes")
        assert lines[2].count("#") == 10  # the max value fills the width
        assert "3.000" in lines[2]

    def test_reference_scaling(self):
        chart = render_bar_chart({"a": 0.5}, width=10, reference=1.0)
        assert chart.count("#") == 5

    def test_values_above_reference_are_clamped(self):
        chart = render_bar_chart({"a": 2.0}, width=10, reference=1.0)
        assert chart.count("#") == 10

    def test_empty_series(self):
        assert "(empty)" in render_bar_chart({})

    def test_zero_values(self):
        chart = render_bar_chart({"a": 0.0, "b": 0.0})
        assert "#" not in chart

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            render_bar_chart({"a": 1.0}, width=0)


class TestFormatTableMore:
    def test_column_subset_and_order(self):
        rows = [{"a": 1, "b": 2, "c": 3}]
        text = format_table(rows, columns=["c", "a"])
        header = text.splitlines()[0]
        assert header.index("c") < header.index("a")
        assert "b" not in header

    def test_precision_forwarded(self):
        text = format_table([{"x": 1.23456}], precision=2)
        assert "1.23" in text and "1.2346" not in text

    def test_geometric_mean_single(self):
        assert geometric_mean([7.0]) == pytest.approx(7.0)


class TestBenchmarkSuiteMore:
    def test_custom_array_propagates(self):
        suite = BenchmarkSuite(array=ArrayConfig(pe_columns=8))
        accelerators = suite.accelerators()
        assert accelerators["Stripes"].array.pe_columns == 8

    def test_accelerators_with_override_array(self):
        suite = BenchmarkSuite()
        accelerators = suite.accelerators(ArrayConfig(pe_columns=4))
        assert accelerators["BitVert (moderate)"].array.pe_columns == 4

    def test_model_caching(self):
        suite = BenchmarkSuite()
        assert suite.model("VGG-16") is suite.model("VGG-16")

    def test_sampling_caps_respected(self):
        suite = BenchmarkSuite(max_channels=32, max_reduction=64)
        weights = suite.weights("ViT-Small")
        for layer in weights.values():
            assert layer.int_weights.shape[0] <= 32
            assert layer.int_weights.shape[1] <= 64


class TestResultContainers:
    def test_layer_performance_total_cycles_is_max(self):
        traffic = MemoryTraffic(0, 0, 0, 0, 0, 0)
        layer = LayerPerformance(
            name="x",
            compute_cycles=100.0,
            dram_cycles=250.0,
            useful_cycles=80.0,
            intra_pe_stall_cycles=10.0,
            inter_pe_stall_cycles=10.0,
            compute_energy_pj=1.0,
            sram_energy_pj=2.0,
            dram_energy_pj=3.0,
            stored_weight_bytes=10.0,
            traffic=traffic,
        )
        assert layer.total_cycles == 250.0
        assert layer.total_energy_pj == 6.0

    def test_model_performance_aggregation_respects_repeat(self, small_vit_weights):
        model = get_model("ViT-Small")
        accel = StripesAccelerator()
        result = accel.run_model(model, small_vit_weights)
        manual = sum(layer.total_cycles * layer.repeat for layer in result.layers)
        assert result.total_cycles == pytest.approx(manual)
        # The repeated encoder blocks dominate the single patch-embed layer.
        repeated = [layer for layer in result.layers if layer.repeat > 1]
        assert sum(l.total_cycles * l.repeat for l in repeated) > 0.5 * result.total_cycles

    def test_speedup_and_energy_ratio_identities(self, small_vit_weights):
        model = get_model("ViT-Small")
        result = StripesAccelerator().run_model(model, small_vit_weights)
        assert result.speedup_over(result) == pytest.approx(1.0)
        assert result.energy_ratio_to(result) == pytest.approx(1.0)

    def test_execution_time_consistent_with_clock(self, small_vit_weights):
        model = get_model("ViT-Small")
        result = StripesAccelerator().run_model(model, small_vit_weights)
        assert result.execution_time_s == pytest.approx(result.total_cycles / 0.8e9)
        assert result.energy_delay_product == pytest.approx(
            result.total_energy_pj * 1e-12 * result.execution_time_s
        )


class TestWorkloadLayerCoverage:
    def test_every_benchmark_layer_lowered(self):
        for name in ("VGG-16", "ResNet-34", "ResNet-50", "ViT-Small", "ViT-Base", "BERT-MRPC"):
            model = get_model(name)
            for spec in model.layers:
                workload = layer_workload(spec)
                assert workload.m > 0 and workload.k > 0 and workload.n > 0
                assert workload.weight_count == spec.weight_count

    def test_conv_and_fc_dominate_vgg(self):
        model = get_model("VGG-16")
        workloads = [layer_workload(spec) for spec in model.layers]
        fc_weights = sum(w.weight_count for w in workloads if w.name.startswith("fc"))
        conv_macs = sum(w.total_macs for w in workloads if w.name.startswith("conv"))
        # VGG's well-known structure: FC layers hold most weights, conv layers
        # most compute.
        assert fc_weights > 0.7 * model.total_weights
        assert conv_macs > 0.9 * model.total_macs


class TestDeterminismAcrossRuns:
    def test_accelerator_results_are_deterministic(self, small_vit_weights):
        model = get_model("ViT-Small")
        first = StripesAccelerator().run_model(model, small_vit_weights)
        second = StripesAccelerator().run_model(model, small_vit_weights)
        assert first.total_cycles == second.total_cycles
        assert first.total_energy_pj == second.total_energy_pj

    def test_wave_sampling_seeded(self, small_resnet_weights):
        from repro.accelerators import PragmaticAccelerator

        model = get_model("ResNet-50")
        first = PragmaticAccelerator().run_model(model, small_resnet_weights)
        second = PragmaticAccelerator().run_model(model, small_resnet_weights)
        assert first.total_cycles == second.total_cycles
