"""Tests for the gateway control plane: ring, registry, quotas, replication,
and the HTTP front door (routing affinity, auth, failover bookkeeping).

The full kill-a-node-mid-campaign path lives in ``test_gateway_e2e.py``;
this file covers each gateway component in isolation plus the in-process
HTTP surface.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.gateway import (
    GatewayAgent,
    HashRing,
    NodeRegistry,
    QuotaExceeded,
    RegistrySkewError,
    ReplicaStore,
    Tenant,
    TenantQuotas,
    UnknownKeyError,
    UnknownNodeError,
    create_gateway,
)
from repro.gateway.registry import compute_registry_digest, node_id_for_url
from repro.service import create_server
from repro.service.client import ServiceClient, ServiceRequestError
from repro.service.journal import checksummed_line
from repro.service.registry import build_default_registry
from repro.service.workers import job_digest


class FakeClock:
    def __init__(self, now: float = 1000.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# --------------------------------------------------------------------- #
# Consistent-hash ring
# --------------------------------------------------------------------- #


class TestHashRing:
    def test_routes_deterministically(self):
        ring = HashRing()
        for member in ("a", "b", "c"):
            ring.add(member)
        keys = [f"digest-{i}" for i in range(200)]
        first = [ring.route(key) for key in keys]
        assert first == [ring.route(key) for key in keys]
        assert set(first) == {"a", "b", "c"}

    def test_member_loss_remaps_about_one_nth(self):
        ring = HashRing()
        members = [f"node-{i}" for i in range(5)]
        for member in members:
            ring.add(member)
        keys = [f"key-{i}" for i in range(1000)]
        before = {key: ring.route(key) for key in keys}
        ring.remove("node-3")
        after = {key: ring.route(key) for key in keys}
        moved = sum(1 for key in keys if before[key] != after[key])
        displaced = sum(1 for key in keys if before[key] == "node-3")
        # Only the removed member's keys move (consistent hashing's point):
        # everything it owned must move, nothing anyone else owned may.
        assert moved == displaced
        assert 0 < displaced < len(keys) * 2 / 5  # ~1/5, generous bound

    def test_exclusion_walks_clockwise_like_removal(self):
        ring = HashRing()
        for member in ("a", "b", "c"):
            ring.add(member)
        keys = [f"key-{i}" for i in range(300)]
        excluded = {key: ring.route(key, exclude={"b"}) for key in keys}
        ring.remove("b")
        assert excluded == {key: ring.route(key) for key in keys}

    def test_empty_and_fully_excluded_ring_route_none(self):
        ring = HashRing()
        assert ring.route("anything") is None
        ring.add("only")
        assert ring.route("anything", exclude={"only"}) is None


# --------------------------------------------------------------------- #
# Node registry state machine
# --------------------------------------------------------------------- #


class TestNodeRegistry:
    def make(self, clock=None):
        return NodeRegistry(
            "digest-1", suspect_after=3.0, dead_after=10.0,
            clock=clock or FakeClock(),
        )

    def test_register_and_heartbeat(self):
        clock = FakeClock()
        registry = self.make(clock)
        node = registry.register("http://n1:8000", "digest-1")
        assert node.state == "healthy"
        assert node.node_id == node_id_for_url("http://n1:8000")
        clock.advance(1.0)
        registry.heartbeat(node.node_id, queue_depth=4, registry_digest="digest-1")
        assert registry.get(node.node_id).queue_depth == 4
        assert registry.sweep() == []

    def test_registration_refuses_registry_skew(self):
        registry = self.make()
        with pytest.raises(RegistrySkewError):
            registry.register("http://n1:8000", "digest-OTHER")
        assert registry.nodes() == []

    def test_heartbeat_skew_and_unknown(self):
        registry = self.make()
        node = registry.register("http://n1:8000", "digest-1")
        with pytest.raises(RegistrySkewError):
            registry.heartbeat(node.node_id, 0, "digest-OTHER")
        with pytest.raises(UnknownNodeError):
            registry.heartbeat("node-nonexistent", 0, "digest-1")

    def test_missed_heartbeats_suspect_then_dead(self):
        clock = FakeClock()
        registry = self.make(clock)
        node = registry.register("http://n1:8000", "digest-1")
        clock.advance(4.0)  # > suspect_after
        moves = registry.sweep()
        assert [(n.node_id, old, new) for n, old, new in moves] == [
            (node.node_id, "healthy", "suspect")
        ]
        assert registry.healthy_ids() == set()
        clock.advance(7.0)  # total silence > dead_after
        moves = registry.sweep()
        assert [(old, new) for _, old, new in moves] == [("suspect", "dead")]
        # Dead nodes must re-register; their heartbeat is refused.
        with pytest.raises(UnknownNodeError):
            registry.heartbeat(node.node_id, 0, "digest-1")

    def test_heartbeat_revives_suspect(self):
        clock = FakeClock()
        registry = self.make(clock)
        node = registry.register("http://n1:8000", "digest-1")
        clock.advance(4.0)
        registry.sweep()
        assert registry.get(node.node_id).state == "suspect"
        registry.heartbeat(node.node_id, 0, "digest-1")
        assert registry.get(node.node_id).state == "healthy"

    def test_mark_suspect_only_demotes_healthy(self):
        clock = FakeClock()
        registry = self.make(clock)
        node = registry.register("http://n1:8000", "digest-1")
        registry.mark_suspect(node.node_id, "connection refused")
        assert registry.get(node.node_id).state == "suspect"
        clock.advance(11.0)
        registry.sweep()
        registry.mark_suspect(node.node_id, "again")  # no-op on dead
        assert registry.get(node.node_id).state == "dead"

    def test_deregister_marks_left_and_reregistration_revives(self):
        registry = self.make()
        node = registry.register("http://n1:8000", "digest-1")
        registry.deregister(node.node_id)
        assert registry.get(node.node_id).state == "left"
        with pytest.raises(UnknownNodeError):
            registry.heartbeat(node.node_id, 0, "digest-1")
        again = registry.register("http://n1:8000", "digest-1")
        assert again.node_id == node.node_id
        assert again.state == "healthy"

    def test_invalid_node_id_rejected(self):
        registry = self.make()
        with pytest.raises(ValueError, match="invalid node id"):
            registry.register("http://n1:8000", "digest-1", node_id="../evil")

    def test_registry_digest_is_stable(self):
        registry = build_default_registry()
        assert compute_registry_digest(registry) == compute_registry_digest(registry)


# --------------------------------------------------------------------- #
# Tenant quotas
# --------------------------------------------------------------------- #


class TestTenantQuotas:
    def make(self, clock=None, **limits):
        tenant = Tenant(name="ci", key="ck-secret", **limits)
        return TenantQuotas([tenant], clock=clock or FakeClock()), tenant

    def test_bearer_key_resolution(self):
        quotas, tenant = self.make()
        assert quotas.tenant_for("Bearer ck-secret") is tenant
        for bad in (None, "", "Basic ck-secret", "Bearer", "Bearer nope"):
            with pytest.raises(UnknownKeyError):
                quotas.tenant_for(bad)

    def test_rate_bucket_refuses_then_refills(self):
        clock = FakeClock()
        quotas, tenant = self.make(clock, rate=2.0, burst=2.0)
        quotas.admit(tenant)
        quotas.admit(tenant)
        with pytest.raises(QuotaExceeded) as excinfo:
            quotas.admit(tenant)
        assert excinfo.value.reason == "rate"
        assert 0 < excinfo.value.retry_after <= 0.5
        clock.advance(0.5)  # refills one token at 2 req/s
        quotas.admit(tenant)

    def test_inflight_cap_and_idempotent_slots(self):
        quotas, tenant = self.make(max_inflight=2)
        quotas.acquire(tenant, "digest-a")
        quotas.acquire(tenant, "digest-a")  # same job: no extra slot
        quotas.acquire(tenant, "digest-b")
        with pytest.raises(QuotaExceeded) as excinfo:
            quotas.acquire(tenant, "digest-c")
        assert excinfo.value.reason == "inflight"
        quotas.release("digest-a")
        quotas.release("digest-a")  # idempotent
        quotas.acquire(tenant, "digest-c")
        assert quotas.inflight("ci") == 2

    def test_two_tenants_same_digest_hold_separate_slots(self):
        first = Tenant(name="a", key="k1", max_inflight=1)
        second = Tenant(name="b", key="k2", max_inflight=1)
        quotas = TenantQuotas([first, second], clock=FakeClock())
        quotas.acquire(first, "digest-x")
        # A second tenant submitting the same digest must not deflate the
        # first tenant's accounting — each holds its own slot.
        quotas.acquire(second, "digest-x")
        assert quotas.inflight("a") == 1
        assert quotas.inflight("b") == 1
        with pytest.raises(QuotaExceeded):
            quotas.acquire(second, "digest-y")
        # The shared job reaching a terminal state frees both holders.
        quotas.release("digest-x")
        assert quotas.inflight("a") == 0
        assert quotas.inflight("b") == 0
        quotas.acquire(first, "digest-y")
        quotas.acquire(second, "digest-z")

    def test_unlimited_tenant_never_throttled(self):
        quotas, tenant = self.make()
        for i in range(100):
            quotas.admit(tenant)
            quotas.acquire(tenant, f"digest-{i}")

    def test_duplicate_names_or_keys_rejected(self):
        with pytest.raises(ValueError, match="duplicate tenant names"):
            TenantQuotas([Tenant("a", "k1"), Tenant("a", "k2")])
        with pytest.raises(ValueError, match="duplicate tenant keys"):
            TenantQuotas([Tenant("a", "k"), Tenant("b", "k")])


# --------------------------------------------------------------------- #
# Replica store
# --------------------------------------------------------------------- #


class TestReplicaStore:
    def test_checksummed_lines_accepted_corrupt_rejected(self, tmp_path):
        store = ReplicaStore(tmp_path)
        good = checksummed_line({"event": "submit", "job_id": "j1", "digest": "d1"})
        tampered = good.replace('"j1"', '"j2"')
        report = store.append_lines("node-a", [good, tampered, "not json", ""])
        assert report == {"accepted": 1, "rejected": 3}
        order, merged = store.merged("node-a")
        assert order == ["j1"]
        assert merged["j1"]["submit"]["digest"] == "d1"

    def test_duplicate_submit_never_clears_finish(self, tmp_path):
        store = ReplicaStore(tmp_path)
        store.record_submit("node-a", job_id="j1", type="t", params={}, digest="d1")
        store.append_lines(
            "node-a",
            [
                checksummed_line({"event": "submit", "job_id": "j1", "digest": "d1"}),
                checksummed_line({"event": "done", "job_id": "j1", "digest": "d1"}),
                checksummed_line({"event": "submit", "job_id": "j1", "digest": "d1"}),
            ],
        )
        assert store.unfinished("node-a") == []

    def test_unfinished_lists_submits_without_finish(self, tmp_path):
        store = ReplicaStore(tmp_path)
        store.record_submit("node-a", job_id="j1", type="t", params={"x": 1}, digest="d1")
        store.record_submit("node-a", job_id="j2", type="t", params={"x": 2}, digest="d2")
        store.append_lines(
            "node-a", [checksummed_line({"event": "failed", "job_id": "j2", "error": "boom"})]
        )
        assert [r["job_id"] for r in store.unfinished("node-a")] == ["j1"]
        assert store.job_view("node-a", "j2")["finish"]["event"] == "failed"

    def test_gateway_id_survives_whichever_submit_wins(self, tmp_path):
        store = ReplicaStore(tmp_path)
        # Node-streamed submit (no gateway_id) lands first; the
        # gateway-authored line with the original gateway id arrives later.
        store.append_lines(
            "node-b", [checksummed_line({"event": "submit", "job_id": "j9", "digest": "d9"})]
        )
        store.record_submit(
            "node-b", job_id="j9", type="t", params={}, digest="d9",
            gateway_id="j1@node-a",
        )
        (record,) = store.unfinished("node-b")
        assert record["gateway_id"] == "j1@node-a"

    def test_path_traversal_node_ids_refused(self, tmp_path):
        store = ReplicaStore(tmp_path)
        with pytest.raises(ValueError, match="invalid node id"):
            store.append_lines("../escape", [])

    def test_torn_tail_skipped_on_read(self, tmp_path):
        store = ReplicaStore(tmp_path)
        store.record_submit("node-a", job_id="j1", type="t", params={}, digest="d1")
        path = tmp_path / "replicas" / "node-a" / "journal.jsonl"
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"event": "done", "job_id": "j1", "cr')  # torn write
        order, merged = store.merged("node-a")
        assert order == ["j1"]
        assert merged["j1"]["finish"] is None


# --------------------------------------------------------------------- #
# HTTP front door (in-process gateway + nodes)
# --------------------------------------------------------------------- #

QUANT = {"type": "quantize_tensor", "params": {"rows": 16, "cols": 32}}


@pytest.fixture(scope="module")
def fabric():
    """A gateway fronting two registered nodes, all in-process."""
    gateway = create_gateway(
        port=0, suspect_after=1.5, dead_after=30.0, sweep_interval=0.2
    )
    threading.Thread(target=gateway.serve_forever, daemon=True).start()
    gateway_url = f"http://127.0.0.1:{gateway.port}"
    servers, agents = [], []
    for _ in range(2):
        server = create_server(port=0, max_workers=2)
        threading.Thread(target=server.serve_forever, daemon=True).start()
        agent = GatewayAgent(
            gateway_url, f"http://127.0.0.1:{server.port}", server,
            heartbeat_interval=0.2,
        )
        agent.start()
        servers.append(server)
        agents.append(agent)
    yield gateway, gateway_url, servers, agents
    for agent in agents:
        agent.stop()
    for server in servers:
        server.close()
    gateway.close()


def wait_done(client: ServiceClient, gid: str, attempts: int = 400) -> dict:
    import time

    for _ in range(attempts):
        record = client.request("GET", f"/v1/jobs/{gid}")
        if record["state"] in ("done", "failed", "cancelled"):
            return record
        time.sleep(0.02)
    raise AssertionError(f"job {gid} never finished: {record}")


class TestGatewayFrontDoor:
    def test_health_and_probe_surface(self, fabric):
        _, url, _, _ = fabric
        client = ServiceClient(url, timeout=10.0)
        health = client.health()
        assert health["role"] == "gateway"
        assert health["nodes"]["healthy"] == 2
        assert client.request("GET", "/v1/healthz") == {"status": "alive"}
        assert client.request("GET", "/v1/readyz") == {"ready": True}
        # The dispatcher's probe path: scenarios + codecs from the gateway.
        assert any(s["name"] == "quantize_tensor" for s in client.scenarios())
        assert client.codecs()

    def test_routes_by_digest_and_second_submit_hits_same_cache(self, fabric):
        _, url, _, _ = fabric
        client = ServiceClient(url, timeout=30.0)
        first = client.request("POST", "/v1/jobs", QUANT)
        assert first["job_id"].endswith("@" + first["node"])
        done = wait_done(client, first["job_id"])
        assert done["state"] == "done"
        second = client.request("POST", "/v1/jobs", QUANT)
        assert second["node"] == first["node"]
        assert second["cache_hit"] is True
        assert second["digest"] == first["digest"]

    def test_gateway_digest_matches_node_digest(self, fabric):
        gateway, url, _, _ = fabric
        client = ServiceClient(url, timeout=30.0)
        record = client.request("POST", "/v1/jobs", QUANT)
        registry = build_default_registry()
        declared = registry.get("quantize_tensor")
        expected = job_digest(
            "quantize_tensor", {**declared.defaults, **QUANT["params"]}
        )
        assert record["digest"] == expected

    def test_submission_recorded_in_replica_journal(self, fabric):
        gateway, url, _, _ = fabric
        client = ServiceClient(url, timeout=30.0)
        body = {"type": "quantize_tensor", "params": {"rows": 16, "cols": 32, "seed": 7}}
        record = client.request("POST", "/v1/jobs", body)
        rid, _, node_id = record["job_id"].rpartition("@")
        view = gateway.replicas.job_view(node_id, rid)
        assert view is not None
        assert view["submit"]["digest"] == record["digest"]

    def test_unknown_scenario_and_bad_body_are_400(self, fabric):
        _, url, _, _ = fabric
        client = ServiceClient(url, timeout=10.0, retries=0)
        with pytest.raises(ServiceRequestError) as excinfo:
            client.request("POST", "/v1/jobs", {"type": "nope", "params": {}})
        assert excinfo.value.status == 400
        with pytest.raises(ServiceRequestError) as excinfo:
            client.request("POST", "/v1/jobs", {"type": "quantize_tensor", "bogus": 1})
        assert excinfo.value.status == 400

    def test_jobs_listing_fans_out_with_digest_filter(self, fabric):
        _, url, _, _ = fabric
        client = ServiceClient(url, timeout=30.0)
        record = client.request("POST", "/v1/jobs", QUANT)
        wait_done(client, record["job_id"])
        listing = client.jobs(digest=record["digest"])
        assert listing["jobs"], "digest filter found nothing through the gateway"
        for entry in listing["jobs"]:
            assert entry["digest"] == record["digest"]
            assert "@" in entry["job_id"]

    def test_compress_route_and_campaign_route(self, fabric):
        _, url, _, _ = fabric
        client = ServiceClient(url, timeout=30.0)
        compressed = client.request(
            "POST", "/v1/compress?wait=30",
            {"codec": "microscaling", "rows": 16, "cols": 32},
        )
        assert compressed["state"] == "done"
        assert "@" in compressed["job_id"]

    def test_cancel_proxies_and_unknown_job_404s(self, fabric):
        _, url, _, _ = fabric
        client = ServiceClient(url, timeout=10.0, retries=0)
        with pytest.raises(ServiceRequestError) as excinfo:
            client.request("GET", "/v1/jobs/job-999@node-000000000000")
        assert excinfo.value.status == 404
        with pytest.raises(ServiceRequestError) as excinfo:
            client.request("GET", "/v1/jobs/not-a-gateway-id")
        assert excinfo.value.status == 404

    def test_node_registration_rejects_skew(self, fabric):
        _, url, _, _ = fabric
        client = ServiceClient(url, timeout=10.0, retries=0)
        with pytest.raises(ServiceRequestError) as excinfo:
            client.request(
                "POST", "/v1/nodes",
                {"url": "http://127.0.0.1:1", "registry_digest": "skewed"},
            )
        assert excinfo.value.status == 409

    def test_gateway_nodes_listing(self, fabric):
        _, url, _, agents = fabric
        client = ServiceClient(url, timeout=10.0)
        listing = client.request("GET", "/v1/gateway/nodes")
        listed = {node["node_id"] for node in listing["nodes"]}
        assert {agent.node_id for agent in agents} <= listed

    def test_journal_replication_streams_node_lines(self, fabric):
        import time

        gateway, url, _, agents = fabric
        client = ServiceClient(url, timeout=30.0)
        body = {"type": "quantize_tensor", "params": {"rows": 16, "cols": 32, "seed": 11}}
        record = client.request("POST", "/v1/jobs", body)
        wait_done(client, record["job_id"])
        rid, _, node_id = record["job_id"].rpartition("@")
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            view = gateway.replicas.job_view(node_id, rid)
            if view and view["finish"] is not None:
                break
            time.sleep(0.05)
        # Nodes in this fixture run without --journal, so no lines stream;
        # the gateway-authored submit must exist regardless.
        assert gateway.replicas.job_view(node_id, rid)["submit"] is not None


class TestGatewayQuotas:
    @pytest.fixture()
    def secured(self, tmp_path):
        keys = tmp_path / "keys.json"
        keys.write_text(json.dumps({
            "tenants": [
                {"name": "ci", "key": "ck-1", "rate": 1000.0, "max_inflight": 1},
                {"name": "research", "key": "rk-1"},
            ]
        }))
        gateway = create_gateway(
            port=0, keys_file=str(keys),
            suspect_after=5.0, dead_after=30.0, sweep_interval=0.5,
        )
        threading.Thread(target=gateway.serve_forever, daemon=True).start()
        url = f"http://127.0.0.1:{gateway.port}"
        server = create_server(port=0, max_workers=1)
        threading.Thread(target=server.serve_forever, daemon=True).start()
        agent = GatewayAgent(
            url, f"http://127.0.0.1:{server.port}", server, heartbeat_interval=0.2
        )
        agent.start()
        yield {"gateway": url, "node": f"http://127.0.0.1:{server.port}"}
        agent.stop()
        server.close()
        gateway.close()

    def test_submission_requires_bearer_key(self, secured):
        client = ServiceClient(secured["gateway"], timeout=10.0, retries=0)
        with pytest.raises(ServiceRequestError) as excinfo:
            client.request("POST", "/v1/jobs", QUANT)
        assert excinfo.value.status == 401
        # Reads stay open: health and polls carry no tenant cost.
        assert client.health()["role"] == "gateway"

    def test_wrong_key_401_and_good_key_routes(self, secured):
        bad = ServiceClient(secured["gateway"], timeout=10.0, retries=0, api_key="nope")
        with pytest.raises(ServiceRequestError) as excinfo:
            bad.request("POST", "/v1/jobs", QUANT)
        assert excinfo.value.status == 401
        good = ServiceClient(secured["gateway"], timeout=30.0, api_key="rk-1")
        record = good.request("POST", "/v1/jobs", QUANT)
        assert "@" in record["job_id"]
        wait_done(good, record["job_id"])

    @staticmethod
    def _occupy_worker(node_url: str) -> str:
        """Park a slow direct job on the node's only worker so the next
        gateway submission stays queued (not done-at-submit, which would
        release its in-flight slot immediately)."""
        direct = ServiceClient(node_url, timeout=30.0)
        blocker = direct.submit(
            "quantize_tensor", {"rows": 2048, "cols": 2048, "seed": 99}
        )
        return blocker["job_id"]

    def test_inflight_quota_429_with_retry_after(self, secured):
        import urllib.error
        import urllib.request

        self._occupy_worker(secured["node"])
        client = ServiceClient(secured["gateway"], timeout=30.0, retries=0, api_key="ck-1")
        first = client.request(
            "POST", "/v1/jobs",
            {"type": "quantize_tensor", "params": {"rows": 64, "cols": 256, "seed": 21}},
        )
        assert first["state"] == "queued"
        # Raw request: assert the 429 envelope itself (the client would
        # translate it into ServiceUnavailable(saturated=True)).
        request = urllib.request.Request(
            secured["gateway"] + "/v1/jobs",
            data=json.dumps(
                {"type": "quantize_tensor", "params": {"rows": 64, "cols": 256, "seed": 22}}
            ).encode(),
            headers={"Content-Type": "application/json", "Authorization": "Bearer ck-1"},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 429
        assert int(excinfo.value.headers["Retry-After"]) >= 1
        body = json.loads(excinfo.value.read())
        assert body["reason"] == "inflight"
        assert body["tenant"] == "ci"
        # The slot frees once the gateway observes the job finish.
        wait_done(client, first["job_id"])
        client.request(
            "POST", "/v1/jobs",
            {"type": "quantize_tensor", "params": {"rows": 64, "cols": 256, "seed": 22}},
        )

    def test_cancel_requires_bearer_key(self, secured):
        self._occupy_worker(secured["node"])
        good = ServiceClient(secured["gateway"], timeout=30.0, retries=0, api_key="rk-1")
        queued = good.request(
            "POST", "/v1/jobs",
            {"type": "quantize_tensor", "params": {"rows": 64, "cols": 256, "seed": 41}},
        )
        # Cancelling releases a quota slot, so anonymous callers must not
        # be able to cancel (and so free) another tenant's job.
        anonymous = ServiceClient(secured["gateway"], timeout=10.0, retries=0)
        with pytest.raises(ServiceRequestError) as excinfo:
            anonymous.request("POST", f"/v1/jobs/{queued['job_id']}/cancel", {})
        assert excinfo.value.status == 401
        record = good.request("POST", f"/v1/jobs/{queued['job_id']}/cancel", {})
        assert record["job_id"] == queued["job_id"]
        assert record["state"] in ("cancelled", "running", "done")

    def test_resubmitting_same_digest_costs_no_extra_slot(self, secured):
        self._occupy_worker(secured["node"])
        client = ServiceClient(secured["gateway"], timeout=30.0, retries=0, api_key="ck-1")
        body = {"type": "quantize_tensor", "params": {"rows": 64, "cols": 256, "seed": 23}}
        first = client.request("POST", "/v1/jobs", body)
        # max_inflight=1 — a second POST of the *same* work must not 429.
        again = client.request("POST", "/v1/jobs", body)
        assert again["digest"] == first["digest"]
        wait_done(client, first["job_id"])


# --------------------------------------------------------------------- #
# Failover resurrection semantics (suspect vs dead, chained node deaths)
# --------------------------------------------------------------------- #


class TestFailoverResurrection:
    @pytest.fixture()
    def plane(self):
        """A gateway over two real nodes admitted *without* heartbeat
        agents, so the test drives node health states directly (an agent
        would re-register a node the test just declared dead)."""
        gateway = create_gateway(
            port=0, suspect_after=60.0, dead_after=120.0, sweep_interval=60.0
        )
        threading.Thread(target=gateway.serve_forever, daemon=True).start()
        url = f"http://127.0.0.1:{gateway.port}"
        servers = []
        try:
            for _ in range(2):
                server = create_server(port=0, max_workers=2)
                threading.Thread(target=server.serve_forever, daemon=True).start()
                gateway.admit_node(
                    f"http://127.0.0.1:{server.port}", gateway.registry_digest
                )
                servers.append(server)
            yield gateway, url
        finally:
            for server in servers:
                server.close()
            gateway.close()

    @staticmethod
    def _ghost_submit(gateway, rid: str = "j-lost") -> str:
        """Record a replica submit for a job owned by a registered node
        that was never reachable (it "died" holding the job); returns the
        gateway job id a client would be polling."""
        body = {"type": "quantize_tensor", "params": {"rows": 16, "cols": 32, "seed": 77}}
        job_type, params, digest, _ = gateway.canonicalize(["jobs"], body)
        gateway.nodes.register(
            "http://127.0.0.1:9", gateway.registry_digest, node_id="node-ghost"
        )
        gateway.note_submission("node-ghost", rid, job_type, params, digest, None)
        return f"{rid}@node-ghost"

    def test_suspect_node_poll_never_resubmits(self, plane):
        gateway, url = plane
        gid = self._ghost_submit(gateway)
        client = ServiceClient(url, timeout=10.0, retries=0)
        # The unreachable poll demotes the node to suspect and answers a
        # synthetic queued — but its in-flight job must be left alone (the
        # node may merely be slow); only the dead transition may replay it.
        record = client.request("GET", f"/v1/jobs/{gid}")
        assert record["state"] == "queued"
        assert gateway.nodes.get("node-ghost").state == "suspect"
        assert gid not in gateway._failover
        record = client.request("GET", f"/v1/jobs/{gid}")
        assert record["state"] == "queued"
        assert gid not in gateway._failover
        gateway.nodes.get("node-ghost").state = "dead"
        record = client.request("GET", f"/v1/jobs/{gid}")
        assert record["job_id"] == gid
        assert gid in gateway._failover

    def test_chained_failover_rehomes_after_second_death(self, plane):
        gateway, url = plane
        gid = self._ghost_submit(gateway)
        gateway.nodes.get("node-ghost").state = "dead"
        outcomes = gateway._failover_node("node-ghost")
        assert outcomes["replayed"] == 1
        first_target, _ = gateway._failover[gid]
        # The replacement dies too (its replica still lists the re-homed
        # job as unfinished — these nodes stream no journal lines): the
        # mapping is stale and the job must re-home again, not be skipped
        # as already handled.
        gateway.nodes.get(first_target).state = "dead"
        outcomes = gateway._failover_node(first_target)
        assert outcomes["replayed"] >= 1
        second_target, _ = gateway._failover[gid]
        assert second_target != first_target
        # Polls follow the live replacement instead of wedging forever on
        # synthetic queued answers resolved against the dead first target.
        record = wait_done(ServiceClient(url, timeout=10.0), gid)
        assert record["state"] == "done"
        assert record["job_id"] == gid


def _raw_get(url: str) -> tuple[int, dict]:
    import urllib.error
    import urllib.request

    try:
        with urllib.request.urlopen(url, timeout=10) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


class TestReadyz:
    def test_gateway_readyz_tracks_fleet_and_drain(self):
        gateway = create_gateway(
            port=0, suspect_after=5.0, dead_after=30.0, sweep_interval=0.5
        )
        threading.Thread(target=gateway.serve_forever, daemon=True).start()
        url = f"http://127.0.0.1:{gateway.port}"
        try:
            status, body = _raw_get(url + "/v1/readyz")
            assert (status, body["reason"]) == (503, "no healthy nodes registered")
            assert _raw_get(url + "/v1/healthz") == (200, {"status": "alive"})
            server = create_server(port=0, max_workers=1)
            threading.Thread(target=server.serve_forever, daemon=True).start()
            agent = GatewayAgent(
                url, f"http://127.0.0.1:{server.port}", server,
                heartbeat_interval=0.2,
            )
            agent.start()
            try:
                assert _raw_get(url + "/v1/readyz") == (200, {"ready": True})
                gateway.begin_drain()
                status, body = _raw_get(url + "/v1/readyz")
                assert (status, body["reason"]) == (503, "draining")
            finally:
                agent.stop()
                server.close()
        finally:
            gateway.close()

    def test_node_readyz_and_drain_signal(self):
        server = create_server(port=0, max_workers=1)
        threading.Thread(target=server.serve_forever, daemon=True).start()
        url = f"http://127.0.0.1:{server.port}"
        try:
            assert _raw_get(url + "/v1/healthz") == (200, {"status": "alive"})
            status, body = _raw_get(url + "/v1/readyz")
            assert (status, body) == (200, {"ready": True})
            server.begin_drain()
            status, body = _raw_get(url + "/v1/readyz")
            assert status == 503
            assert body["reason"] == "draining"
        finally:
            server.close()


# --------------------------------------------------------------------- #
# Client reconcile-on-retry (the double-submit bugfix)
# --------------------------------------------------------------------- #


class TestSubmitReconciliation:
    def test_retry_reconciles_by_digest_instead_of_reposting(self):
        """A submit whose response is lost must not double-submit on retry.

        A real node accepts the POST, but the stub truncates the response
        so the client sees a transport error; the retry's reconcile hook
        finds the accepted job via ``GET /v1/jobs?digest=`` and adopts it
        without a second POST.
        """
        import http.client
        import urllib.request

        server = create_server(port=0, max_workers=1)
        threading.Thread(target=server.serve_forever, daemon=True).start()
        url = f"http://127.0.0.1:{server.port}"
        try:
            client = ServiceClient(url, timeout=10.0, retries=2, backoff=0.01)
            posts = {"count": 0}
            original_urlopen = urllib.request.urlopen

            def flaky_urlopen(request, timeout=None):
                if getattr(request, "method", None) == "POST" and request.selector.startswith(
                    "/v1/jobs"
                ):
                    posts["count"] += 1
                    if posts["count"] == 1:
                        # Deliver the POST, then lose the response.
                        original_urlopen(request, timeout=timeout).close()
                        raise http.client.IncompleteRead(b"")
                return original_urlopen(request, timeout=timeout)

            urllib.request.urlopen = flaky_urlopen
            try:
                record = client.submit(
                    "quantize_tensor", {"rows": 16, "cols": 32, "seed": 31}
                )
            finally:
                urllib.request.urlopen = original_urlopen
            assert posts["count"] == 1, "retry re-POSTed despite the job landing"
            assert client.reconciliations == 1
            assert record["state"] in ("queued", "running", "done")
            assert client.retry_stats()["reconciliations"] == 1
            listing = client.jobs(digest=record["digest"])
            assert listing["total"] == 1, "double submit reached the node"
        finally:
            server.close()


class TestNeverServedClose:
    def test_gateway_close_before_serve_forever_returns(self):
        # shutdown() waits on an event only serve_forever() sets on exit;
        # a gateway closed before ever serving must not hang.
        gateway = create_gateway(port=0)
        done = threading.Event()

        def close():
            gateway.close()
            done.set()

        threading.Thread(target=close, daemon=True).start()
        assert done.wait(10), "close() hung on a gateway that never served"
