"""Tests for the job lifecycle, worker pool, caching, and in-flight dedup."""

from __future__ import annotations

import threading

import pytest

from repro.service import (
    JobState,
    ResultCache,
    ScenarioRegistry,
    WorkerPool,
    build_default_registry,
)


@pytest.fixture()
def registry():
    """A tiny registry of instrumented job types (fast, controllable)."""
    registry = ScenarioRegistry()
    calls = {"echo": 0, "boom": 0, "slow": 0, "none": 0}
    gate = threading.Event()
    started = threading.Event()

    def echo(value=0):
        calls["echo"] += 1
        return {"value": value}

    def none_result(value=0):
        calls["none"] += 1
        return None

    def boom(value=0):
        calls["boom"] += 1
        raise RuntimeError(f"deliberate failure ({value})")

    def slow(value=0):
        calls["slow"] += 1
        started.set()
        assert gate.wait(10), "test never released the gate"
        return {"value": value}

    registry.add("echo", "echo the params", echo, {"value": 0})
    registry.add("boom", "always fails", boom, {"value": 0})
    registry.add("slow", "blocks until released", slow, {"value": 0})
    registry.add("none", "returns None", none_result, {"value": 0})
    registry.calls = calls
    registry.gate = gate
    registry.started = started
    return registry


@pytest.fixture()
def pool(registry):
    with WorkerPool(registry, cache=ResultCache(max_entries=8), max_workers=2) as pool:
        yield pool
        registry.gate.set()  # never leave a slow job blocking shutdown


class TestJobLifecycle:
    def test_successful_job(self, pool):
        job = pool.run("echo", {"value": 42}, timeout=10)
        assert job.state is JobState.DONE
        assert job.result == {"value": 42}
        assert job.error is None and not job.cache_hit
        assert job.queue_seconds >= 0 and job.run_seconds >= 0
        assert job.finished_at >= job.started_at >= job.submitted_at - 1e-3
        payload = job.to_dict(include_result=True)
        assert payload["state"] == "done" and payload["result"] == {"value": 42}

    def test_failed_job_captures_traceback(self, pool, registry):
        job = pool.run("boom", timeout=10)
        assert job.state is JobState.FAILED
        assert job.result is None
        assert "RuntimeError" in job.error and "deliberate failure" in job.error
        # Failures are not cached: resubmitting runs the job again.
        again = pool.run("boom", timeout=10)
        assert again.job_id != job.job_id
        assert registry.calls["boom"] == 2

    def test_unknown_job_type_rejected_at_submit(self, pool):
        with pytest.raises(ValueError, match="unknown job type"):
            pool.submit("nope")

    def test_unknown_param_fails_the_job(self, pool):
        job = pool.run("echo", {"bogus": 1}, timeout=10)
        assert job.state is JobState.FAILED
        assert "unknown parameter" in job.error

    def test_store_counts(self, pool):
        pool.run("echo", {"value": 1}, timeout=10)
        pool.run("boom", timeout=10)
        counts = pool.store.counts()
        assert counts["done"] == 1 and counts["failed"] == 1
        assert counts["queued"] == 0 and counts["running"] == 0


class TestCachingAndDedup:
    def test_second_identical_job_is_a_cache_hit(self, pool, registry):
        first = pool.run("echo", {"value": 7}, timeout=10)
        second = pool.run("echo", {"value": 7}, timeout=10)
        assert second.job_id != first.job_id
        assert second.cache_hit and second.state is JobState.DONE
        assert second.result == first.result
        assert registry.calls["echo"] == 1
        assert pool.stats()["cache_hits"] == 1

    def test_omitted_defaults_share_a_cache_entry(self, pool, registry):
        # {} and the explicit defaults run the identical computation, so they
        # must canonicalize to the same digest.
        first = pool.run("echo", {}, timeout=10)
        second = pool.run("echo", {"value": 0}, timeout=10)
        assert second.cache_hit
        assert first.digest == second.digest
        assert registry.calls["echo"] == 1

    def test_different_params_are_different_cache_entries(self, pool, registry):
        pool.run("echo", {"value": 1}, timeout=10)
        job = pool.run("echo", {"value": 2}, timeout=10)
        assert not job.cache_hit
        assert registry.calls["echo"] == 2

    def test_inflight_dedup_shares_one_job(self, pool, registry):
        first = pool.submit("slow", {"value": 3})
        assert registry.started.wait(10)
        second = pool.submit("slow", {"value": 3})
        assert second is first
        assert first.dedup_count == 1
        registry.gate.set()
        assert first.wait(10)
        assert first.state is JobState.DONE and first.result == {"value": 3}
        assert registry.calls["slow"] == 1
        assert pool.stats()["dedup_hits"] == 1
        # After completion the digest is served from cache, not dedup.
        third = pool.run("slow", {"value": 3}, timeout=10)
        assert third.cache_hit and third.job_id != first.job_id

    def test_concurrent_distinct_jobs_both_run(self, pool, registry):
        slow = pool.submit("slow", {"value": 1})
        quick = pool.run("echo", {"value": 1}, timeout=10)
        assert quick.state is JobState.DONE
        registry.gate.set()
        assert slow.wait(10)
        assert slow.state is JobState.DONE

    def test_none_result_is_cached(self, pool, registry):
        # Regression: a None result used to read as a cache miss forever.
        first = pool.run("none", {"value": 4}, timeout=10)
        assert first.state is JobState.DONE and first.result is None
        second = pool.run("none", {"value": 4}, timeout=10)
        assert second.cache_hit and second.result is None
        assert registry.calls["none"] == 1


class TestCancellation:
    def test_cancel_queued_job(self, registry):
        with WorkerPool(registry, cache=ResultCache(), max_workers=1) as pool:
            running = pool.submit("slow", {"value": 1})
            assert registry.started.wait(10)
            queued = pool.submit("echo", {"value": 1})
            assert queued.state is JobState.QUEUED

            cancelled = pool.cancel(queued.job_id)
            assert cancelled is queued
            assert queued.state is JobState.CANCELLED
            assert queued.wait(1)  # cancellation completes the job event
            assert pool.stats()["cancelled"] == 1
            assert registry.calls["echo"] == 0, "cancelled job must never run"

            registry.gate.set()
            assert running.wait(10)
            # The digest is free again: resubmission runs the job.
            rerun = pool.run("echo", {"value": 1}, timeout=10)
            assert rerun.state is JobState.DONE
            assert registry.calls["echo"] == 1

    def test_cancel_running_job_is_refused(self, registry):
        with WorkerPool(registry, cache=ResultCache(), max_workers=1) as pool:
            running = pool.submit("slow", {"value": 2})
            assert registry.started.wait(10)
            refused = pool.cancel(running.job_id)
            assert refused is running
            assert running.state is JobState.RUNNING
            registry.gate.set()
            assert running.wait(10)
            assert running.state is JobState.DONE

    def test_cancel_unknown_job_returns_none(self, pool):
        assert pool.cancel("job-999999") is None

    def test_cancel_finished_job_keeps_its_state(self, pool):
        done = pool.run("echo", {"value": 8}, timeout=10)
        assert pool.cancel(done.job_id) is done
        assert done.state is JobState.DONE


class TestBackpressure:
    def test_submit_raises_when_queue_full(self, registry):
        from repro.service import QueueFullError

        with WorkerPool(
            registry, cache=ResultCache(), max_workers=1, max_queued=2
        ) as pool:
            pool.submit("slow", {"value": 1})
            assert registry.started.wait(10)
            pool.submit("echo", {"value": 1})
            with pytest.raises(QueueFullError, match="queue is full"):
                pool.submit("echo", {"value": 2})
            assert pool.stats()["rejected"] == 1

            # Dedup and cache hits are never rejected: they add no load.
            dedup = pool.submit("echo", {"value": 1})
            assert dedup.dedup_count == 1

            registry.gate.set()
            dedup.wait(10)
            # Draining the queue re-opens submission.
            job = pool.run("echo", {"value": 2}, timeout=10)
            assert job.state is JobState.DONE

    def test_invalid_limit_rejected(self, registry):
        with pytest.raises(ValueError, match="max_queued"):
            WorkerPool(registry, cache=ResultCache(), max_queued=0)


class TestJobStoreBounds:
    def test_finished_history_is_bounded(self, registry):
        from repro.service import JobStore

        store = JobStore(max_finished=3)
        with WorkerPool(registry, cache=ResultCache(), max_workers=2, store=store) as pool:
            for value in range(6):
                pool.run("echo", {"value": value}, timeout=10)
            assert len(store) <= 3

    def test_active_jobs_are_never_evicted(self, registry):
        from repro.service import JobStore

        store = JobStore(max_finished=1)
        with WorkerPool(registry, cache=ResultCache(), max_workers=2, store=store) as pool:
            slow = pool.submit("slow", {"value": 9})
            assert registry.started.wait(10)
            pool.run("echo", {"value": 1}, timeout=10)
            assert store.get(slow.job_id) is slow  # running job survives
            registry.gate.set()
            assert slow.wait(10)

    def test_invalid_bound_rejected(self):
        from repro.service import JobStore

        with pytest.raises(ValueError):
            JobStore(max_finished=0)


class TestDefaultRegistry:
    def test_covers_every_experiment_and_adhoc_job(self):
        registry = build_default_registry()
        from repro.cli import EXPERIMENT_COMMANDS

        names = registry.names()
        for name in EXPERIMENT_COMMANDS:
            assert name in names
        for name in ("ablations", "suite", "prune_tensor", "simulate"):
            assert name in names
        described = {entry["name"]: entry for entry in registry.describe()}
        assert described["figure12"]["params"] == {"models": None, "seed": 0}
        assert "rows" in described["prune_tensor"]["params"]

    def test_prune_tensor_job_runs_and_is_json(self):
        import json

        registry = build_default_registry()
        result = registry.run("prune_tensor", {"rows": 32, "cols": 128})
        json.dumps(result, allow_nan=False)
        assert 0 < result["effective_bits"] < 8
        assert result["compression_ratio"] > 1.0
        assert len(result["content_digest"]) == 64

    def test_simulate_job_runs_and_is_json(self):
        import json

        registry = build_default_registry()
        result = registry.run(
            "simulate",
            {
                "model": "ViT-Small",
                "accelerator": "Stripes",
                "max_channels": 32,
                "max_reduction": 128,
            },
        )
        json.dumps(result, allow_nan=False)
        assert result["total_cycles"] > 0
        assert result["total_energy_pj"] > 0
        assert result["suite"]["max_channels"] == 32

    def test_simulate_rejects_unknown_accelerator(self):
        registry = build_default_registry()
        with pytest.raises(ValueError, match="unknown accelerator"):
            registry.run("simulate", {"accelerator": "TPU"})
