"""Tests for the append-only job journal and its restart replay."""

from __future__ import annotations

import json
import threading

import pytest

from repro.service import (
    JobJournal,
    JobState,
    ResultCache,
    ScenarioRegistry,
    WorkerPool,
    create_server,
)
from repro.service.workers import job_digest


def make_registry(calls: list) -> ScenarioRegistry:
    registry = ScenarioRegistry()

    def echo(value=0):
        calls.append(value)
        return {"value": value}

    def boom(value=0):
        raise RuntimeError("deliberate failure")

    registry.add("echo", "echo the params", echo, {"value": 0})
    registry.add("boom", "always fails", boom, {"value": 0})
    return registry


def make_pool(tmp_path, calls):
    journal = JobJournal(tmp_path)
    cache = ResultCache(max_entries=32, directory=tmp_path / "cache")
    pool = WorkerPool(make_registry(calls), cache=cache, max_workers=2, journal=journal)
    return pool, journal


class TestJournalRecording:
    def test_every_lifecycle_event_is_journaled(self, tmp_path):
        calls: list = []
        pool, journal = make_pool(tmp_path, calls)
        done = pool.run("echo", {"value": 1}, timeout=10)
        failed = pool.run("boom", timeout=10)
        hit = pool.run("echo", {"value": 1}, timeout=10)  # cache hit
        pool.shutdown()
        journal.close()

        lines = (tmp_path / "journal.jsonl").read_text().splitlines()
        events = [json.loads(line) for line in lines]
        by_id = {}
        for event in events:
            by_id.setdefault(event["job_id"], []).append(event["event"])
        assert by_id[done.job_id] == ["submit", "done"]
        assert by_id[failed.job_id] == ["submit", "failed"]
        assert by_id[hit.job_id] == ["submit", "done"]
        hit_done = next(e for e in events if e["job_id"] == hit.job_id and e["event"] == "done")
        assert hit_done["cache_hit"] is True

    def test_journal_write_failure_does_not_fail_the_job(self, tmp_path):
        calls: list = []
        pool, journal = make_pool(tmp_path, calls)
        journal._handle.close()  # simulate a dead journal disk
        job = pool.run("echo", {"value": 2}, timeout=10)
        assert job.state is JobState.DONE
        assert journal.write_errors >= 1
        pool.shutdown()


class TestJournalReplay:
    def test_kill_and_replay_round_trip(self, tmp_path):
        # First life: one finished, one failed job; then a submit line with
        # no finish line — the queue a kill would destroy.
        calls: list = []
        pool, journal = make_pool(tmp_path, calls)
        done = pool.run("echo", {"value": 1}, timeout=10)
        failed = pool.run("boom", timeout=10)
        pool.shutdown()
        journal.record(
            "submit",
            job_id="job-000077",
            type="echo",
            params={"value": 7},
            digest=job_digest("echo", {"value": 7}),
            submitted_at=0.0,
        )
        journal.close()

        # Second life: replay must serve the finished job from the persisted
        # cache (no recompute), keep the failure, and re-run only the
        # unfinished job.
        calls2: list = []
        pool2, journal2 = make_pool(tmp_path, calls2)
        stats = journal2.replay(pool2)
        assert stats["replayed"] == 3
        assert stats["completed"] == 1 and stats["failed"] == 1 and stats["requeued"] == 1

        replayed = pool2.store.get(done.job_id)
        assert replayed.state is JobState.DONE and replayed.cache_hit
        assert replayed.result == {"value": 1}
        refailed = pool2.store.get(failed.job_id)
        assert refailed.state is JobState.FAILED
        assert "deliberate failure" in refailed.error

        requeued = pool2.store.get("job-000077")
        assert requeued.wait(10)
        assert requeued.state is JobState.DONE and requeued.result == {"value": 7}
        assert calls2 == [7], "only the unfinished job may recompute"
        pool2.shutdown()
        journal2.close()

    def test_new_jobs_after_replay_get_fresh_ids(self, tmp_path):
        calls: list = []
        pool, journal = make_pool(tmp_path, calls)
        old = pool.run("echo", {"value": 1}, timeout=10)
        pool.shutdown()
        journal.close()

        pool2, journal2 = make_pool(tmp_path, [])
        journal2.replay(pool2)
        fresh = pool2.run("echo", {"value": 2}, timeout=10)
        assert fresh.job_id != old.job_id
        assert int(fresh.job_id.split("-")[1]) > int(old.job_id.split("-")[1])
        pool2.shutdown()
        journal2.close()

    def test_torn_final_line_is_skipped(self, tmp_path):
        calls: list = []
        pool, journal = make_pool(tmp_path, calls)
        done = pool.run("echo", {"value": 1}, timeout=10)
        pool.shutdown()
        journal.close()
        with (tmp_path / "journal.jsonl").open("a") as handle:
            handle.write('{"event": "submit", "job_id": "job-0')  # killed mid-write

        pool2, journal2 = make_pool(tmp_path, [])
        stats = journal2.replay(pool2)
        assert stats["replayed"] == 1
        assert pool2.store.get(done.job_id).state is JobState.DONE
        pool2.shutdown()
        journal2.close()

    def test_unfinished_job_with_cached_result_is_not_recomputed(self, tmp_path):
        # The crash window between cache.put and the journal's finish line:
        # the journal says unfinished, but the persisted payload exists.
        calls: list = []
        pool, journal = make_pool(tmp_path, calls)
        digest = job_digest("echo", {"value": 5})
        pool.cache.put(digest, {"value": 5})
        journal.record("submit", job_id="job-000042", type="echo",
                       params={"value": 5}, digest=digest, submitted_at=0.0)
        pool.shutdown()
        journal.close()

        calls2: list = []
        pool2, journal2 = make_pool(tmp_path, calls2)
        stats = journal2.replay(pool2)
        assert stats["completed"] == 1 and stats["requeued"] == 0
        job = pool2.store.get("job-000042")
        assert job.state is JobState.DONE and job.cache_hit
        assert job.result == {"value": 5}
        assert calls2 == [], "a persisted result must never recompute"
        # The journal now carries the finish line the crash swallowed.
        finishes = [json.loads(line) for line in
                    (tmp_path / "journal.jsonl").read_text().splitlines()
                    if '"done"' in line]
        assert any(e["job_id"] == "job-000042" for e in finishes)
        pool2.shutdown()
        journal2.close()

    def test_done_job_with_lost_cache_entry_is_recomputed(self, tmp_path):
        calls: list = []
        pool, journal = make_pool(tmp_path, calls)
        done = pool.run("echo", {"value": 3}, timeout=10)
        pool.shutdown()
        journal.close()
        for path in (tmp_path / "cache").glob("*.json"):
            path.unlink()  # the persisted payloads did not survive

        calls2: list = []
        pool2, journal2 = make_pool(tmp_path, calls2)
        stats = journal2.replay(pool2)
        assert stats["requeued"] == 1
        requeued = pool2.store.get(done.job_id)
        assert requeued.wait(10)
        assert requeued.state is JobState.DONE and requeued.result == {"value": 3}
        assert calls2 == [3]
        pool2.shutdown()
        journal2.close()


class TestServerJournalIntegration:
    def test_restarted_server_replays_and_serves_results(self, tmp_path):
        import urllib.request

        def get(base, path):
            with urllib.request.urlopen(base + path) as response:
                return json.loads(response.read())

        def post(base, path, payload):
            request = urllib.request.Request(
                base + path, data=json.dumps(payload).encode(),
                headers={"Content-Type": "application/json"}, method="POST",
            )
            with urllib.request.urlopen(request) as response:
                return json.loads(response.read())

        journal_dir = str(tmp_path / "journal")
        server = create_server(port=0, max_workers=2, journal_dir=journal_dir)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        base = f"http://127.0.0.1:{server.port}"
        job = {"type": "prune_tensor", "params": {"rows": 32, "cols": 128}}
        first = post(base, "/jobs?wait=120", job)
        assert first["state"] == "done"
        server.close()
        thread.join(timeout=10)

        restarted = create_server(port=0, max_workers=2, journal_dir=journal_dir)
        thread = threading.Thread(target=restarted.serve_forever, daemon=True)
        thread.start()
        base = f"http://127.0.0.1:{restarted.port}"
        assert restarted.replay_stats["completed"] == 1

        # The pre-restart job is visible under its old id with its result.
        record = get(base, f"/jobs/{first['job_id']}/result")
        assert record["state"] == "done"
        assert record["result"] == first["result"]
        # A resubmission is a cache hit, not a recompute.
        again = post(base, "/jobs?wait=120", job)
        assert again["state"] == "done" and again["cache_hit"]
        assert get(base, "/health")["journal"] is True
        restarted.close()
        thread.join(timeout=10)

    def test_journal_replay_counts_in_pool_states(self, tmp_path):
        # ReproServer.close() requires a running serve_forever loop, so the
        # servers get one even though the test talks to the pool directly.
        journal_dir = str(tmp_path / "journal")
        server = create_server(port=0, max_workers=2, journal_dir=journal_dir)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        job = server.pool.run("prune_tensor", {"rows": 16, "cols": 64}, timeout=120)
        assert job.state is JobState.DONE
        server.close()
        thread.join(timeout=10)

        restarted = create_server(port=0, max_workers=2, journal_dir=journal_dir)
        thread = threading.Thread(target=restarted.serve_forever, daemon=True)
        thread.start()
        counts = restarted.pool.store.counts()
        assert counts["done"] == 1
        restarted.close()
        thread.join(timeout=10)


@pytest.mark.parametrize("bad", [123, None])
def test_replay_skips_records_without_usable_job_id(tmp_path, bad):
    journal = JobJournal(tmp_path)
    journal.record("submit", job_id=bad, type="echo", params={}, digest="d")
    journal.close()
    pool = WorkerPool(make_registry([]), cache=ResultCache(), max_workers=1)
    stats = JobJournal(tmp_path).replay(pool)
    assert stats["replayed"] == 0
    pool.shutdown()
