"""Tests for the composable Codec API and its versioned service surface.

Covers the invariants every registered codec must satisfy (round trip,
finite uniform metrics, cross-process digest stability), the pipeline codec,
the campaign ``codec:``/``pipeline:`` sugar end-to-end, the ``/v1`` HTTP
routes with their legacy deprecated aliases, and the API-surface guard.
"""

from __future__ import annotations

import json
import subprocess
import sys
import threading
import urllib.error
import urllib.request
from pathlib import Path

import numpy as np
import pytest

from repro import codecs
from repro.campaign import parse_spec, run_campaign
from repro.codecs import (
    Codec,
    CodecError,
    CompressionResult,
    register_codec,
    run_codec,
    unregister_codec,
)
from repro.service import ResultCache, build_default_registry, create_server

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Every registered codec that compresses directly (pipeline is composed).
DIRECT_CODECS = [name for name in codecs.codec_names() if name != "pipeline"]


def float_tensor(rows: int = 24, cols: int = 64, seed: int = 7) -> np.ndarray:
    return np.random.default_rng(seed).normal(0.0, 1.0, size=(rows, cols))


def int8_tensor(rows: int = 24, cols: int = 64, seed: int = 7) -> np.ndarray:
    values = np.round(np.random.default_rng(seed).normal(0.0, 24.0, size=(rows, cols)))
    return np.clip(values, -127, 127).astype(np.int64)


class TestCodecInvariants:
    """The contract every registered codec must honour."""

    @pytest.mark.parametrize("name", DIRECT_CODECS)
    def test_float_round_trip_and_finite_metrics(self, name):
        tensor = float_tensor()
        result = run_codec(name, tensor)

        assert isinstance(result, CompressionResult)
        assert result.codec == name and result.version
        assert result.values.shape == tensor.shape
        assert np.isfinite(result.mse())
        assert 0.0 < result.effective_bits() <= 64.0
        assert result.storage_bits > 0
        scalars = result.scalars()
        assert set(scalars) >= {"mse", "effective_bits", "storage_bits"}
        assert all(np.isfinite(v) for v in scalars.values())

        decoded = codecs.get_codec(name).decompress(result)
        assert decoded.shape == tensor.shape
        assert np.allclose(np.asarray(decoded, dtype=np.float64),
                           np.asarray(result.values, dtype=np.float64))

    @pytest.mark.parametrize("name", DIRECT_CODECS)
    def test_integer_input_accepted(self, name):
        result = run_codec(name, int8_tensor())
        assert result.values.shape == (24, 64)
        assert np.isfinite(result.mse())

    @pytest.mark.parametrize("name", DIRECT_CODECS)
    def test_digest_deterministic_within_process(self, name):
        tensor = float_tensor()
        assert run_codec(name, tensor).digest() == run_codec(name, tensor).digest()

    @pytest.mark.parametrize("name", DIRECT_CODECS)
    def test_unknown_params_rejected(self, name):
        with pytest.raises(CodecError, match="typo_param"):
            run_codec(name, float_tensor(), {"typo_param": 1})

    def test_unknown_codec_rejected(self):
        with pytest.raises(CodecError, match="no_such_codec"):
            run_codec("no_such_codec", float_tensor())

    def test_bad_tensor_shapes_rejected(self):
        with pytest.raises(CodecError):
            run_codec("ptq", np.zeros(8))
        with pytest.raises(CodecError):
            run_codec("ptq", np.zeros((0, 4)))

    def test_ptq_reconstructs_wide_integer_inputs_at_magnitude(self):
        # Integer inputs wider than int8 must reconstruct at their real
        # magnitude (per-channel scales carry it), not be crushed to ±127.
        tensor = np.array([[1000, -1000, 500, -500]], dtype=np.int64)
        result = run_codec("ptq", tensor, {"bits": 8})
        assert result.values.max() > 900 and result.values.min() < -900
        assert result.mse() < 100.0  # 8-bit quantization error, not clipping
        decoded = codecs.get_codec("ptq").decompress(result)
        assert np.array_equal(decoded, result.values)

    def test_bitplane_is_lossless_on_integer_input(self):
        tensor = int8_tensor()
        result = run_codec("bitplane", tensor)
        assert result.mse() == 0.0
        assert np.array_equal(result.values, tensor)
        assert result.storage_bits < tensor.size * 8  # it actually compresses
        decoded = codecs.get_codec("bitplane").decompress(result)
        assert np.array_equal(decoded, tensor)

    def test_digests_stable_across_processes(self):
        """The provenance digest is content-addressed, not id/repr-addressed."""
        script = (
            "import json, numpy as np\n"
            "from repro.codecs import run_codec, codec_names\n"
            "t = np.random.default_rng(7).normal(0.0, 1.0, size=(24, 64))\n"
            "print(json.dumps({n: run_codec(n, t).digest()\n"
            "                  for n in codec_names() if n != 'pipeline'}))\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, check=True,
            cwd=REPO_ROOT, env={"PYTHONPATH": str(REPO_ROOT / "src")},
        )
        remote = json.loads(out.stdout)
        tensor = float_tensor()
        local = {name: run_codec(name, tensor).digest() for name in DIRECT_CODECS}
        assert remote == local


class TestSharedMetricsMixin:
    """The deduplicated scalar surface of the legacy result dataclasses."""

    def test_quant_results_share_the_scalar_surface(self):
        from repro import quant
        from repro.core import PruningStrategy, prune_tensor

        tensor = float_tensor()
        results = [
            quant.ant_quantize(tensor, bits=6),
            quant.microscaling_quantize(tensor),
            quant.noisyquant_quantize(tensor),
            quant.olive_quantize(tensor),
            quant.bitflip_tensor(int8_tensor(), 2),
            prune_tensor(int8_tensor(), 2, PruningStrategy.ZERO_POINT_SHIFT),
        ]
        for result in results:
            scalars = result.scalars()
            assert set(scalars) >= {"mse", "effective_bits"}
            assert scalars["mse"] == pytest.approx(result.mse())
            payload = result.to_jsonable()
            json.dumps(payload, allow_nan=False)

    def test_mixin_mse_matches_legacy_formula(self):
        from repro import quant

        tensor = float_tensor()
        result = quant.olive_quantize(tensor)
        assert result.mse() == pytest.approx(
            float(np.mean((tensor - result.values) ** 2))
        )


class TestPipelineCodec:
    def test_chained_stages_report_per_stage_metrics(self):
        tensor = float_tensor()
        result = run_codec("pipeline", tensor, {"stages": [
            {"codec": "prune", "params": {"num_columns": 2}},
            {"codec": "ptq", "params": {"bits": 6}},
            {"codec": "bitplane"},
        ]})
        assert [stage.codec for stage in result.stages] == ["prune", "ptq", "bitplane"]
        # Cumulative error is measured against the pipeline input and the
        # final stage's cumulative MSE is the pipeline's own MSE.
        assert result.stages[-1].cumulative_mse == pytest.approx(result.mse())
        assert all(np.isfinite(stage.stage_mse) for stage in result.stages)
        # The stored artifact is the final stage's encoding.
        assert result.storage_bits == result.stages[-1].storage_bits

    def test_integer_pipeline_keeps_lossless_final_stage(self):
        # On an integer tensor the whole chain stays in the code domain, so
        # the bitplane stage reconstructs bit-exactly (stage error of 0).
        result = run_codec("pipeline", int8_tensor(), {"stages": [
            {"codec": "prune", "params": {"num_columns": 2}},
            {"codec": "bitplane"},
        ]})
        assert result.stages[-1].stage_mse == 0.0
        assert result.stages[-1].cumulative_mse == pytest.approx(
            result.stages[0].cumulative_mse
        )

    def test_pipeline_validation(self):
        tensor = float_tensor()
        with pytest.raises(CodecError, match="non-empty"):
            run_codec("pipeline", tensor, {"stages": []})
        with pytest.raises(CodecError, match="cannot nest"):
            run_codec("pipeline", tensor, {"stages": [{"codec": "pipeline"}]})
        with pytest.raises(CodecError, match="unknown codec"):
            run_codec("pipeline", tensor, {"stages": [{"codec": "nope"}]})
        with pytest.raises(CodecError, match="unknown parameter"):
            run_codec("pipeline", tensor, {"stages": [{"codec": "ptq", "params": {"x": 1}}]})


class TestThirdPartyRegistration:
    def test_register_and_unregister_a_custom_codec(self):
        @register_codec
        class NullCodec(Codec):
            name = "null_codec_test"
            version = "1"
            summary = "identity codec for tests"
            lossless = True
            defaults = {"bits": 8}

            def compress(self, tensor, **params):
                tensor = np.asarray(tensor)
                return self._result(
                    tensor, tensor.copy(),
                    storage_bits=tensor.size * params["bits"], params=params,
                )

        try:
            assert "null_codec_test" in codecs.codec_names()
            result = run_codec("null_codec_test", float_tensor())
            assert result.mse() == 0.0
        finally:
            unregister_codec("null_codec_test")
        assert "null_codec_test" not in codecs.codec_names()

    def test_duplicate_names_are_rejected(self):
        with pytest.raises(CodecError, match="already registered"):
            @register_codec
            class Impostor(Codec):
                name = "ptq"

                def compress(self, tensor, **params):  # pragma: no cover
                    raise NotImplementedError

    def test_example_custom_codec_runs(self):
        out = subprocess.run(
            [sys.executable, str(REPO_ROOT / "examples" / "custom_codec.py")],
            capture_output=True, text=True,
            cwd=REPO_ROOT, env={"PYTHONPATH": str(REPO_ROOT / "src")},
        )
        assert out.returncode == 0, out.stderr
        assert "topk_sparse" in out.stdout


class TestCodecCompressScenario:
    """The service scenario the campaign engine and /v1/compress submit to."""

    @pytest.fixture(scope="class")
    def registry(self):
        return build_default_registry()

    def test_named_codec_record_shape(self, registry):
        record = registry.run("codec_compress", {
            "codec": "microscaling", "rows": 16, "cols": 64,
            "params": {"bits": 4},
        })
        assert record["codec"] == "microscaling"
        assert record["shape"] == [16, 64]
        assert record["params"]["bits"] == 4
        assert record["metrics"]["mse"] > 0
        assert record["digest"]
        json.dumps(record, allow_nan=False)

    def test_stages_imply_pipeline(self, registry):
        record = registry.run("codec_compress", {
            "rows": 16, "cols": 64,
            "stages": [{"codec": "prune"}, {"codec": "bitplane"}],
        })
        assert record["codec"] == "pipeline"
        assert [stage["codec"] for stage in record["stages"]] == ["prune", "bitplane"]

    def test_quantize_tensor_is_a_thin_codec_dispatch(self, registry):
        """The legacy scenario and the codec agree exactly."""
        record = registry.run("quantize_tensor", {
            "backend": "olive", "rows": 16, "cols": 64, "bits": 4,
        })
        tensor = np.random.default_rng(0).normal(0.0, 1.0, size=(16, 64))
        direct = run_codec("olive", tensor, {"bits": 4})
        assert record["mse"] == pytest.approx(direct.mse())
        assert record["effective_bits"] == pytest.approx(direct.effective_bits())
        assert record["outlier_fraction"] == pytest.approx(
            direct.extras["outlier_fraction"]
        )
        assert record["content_digest"] == direct.digest()

    def test_bad_submissions_fail_loudly(self, registry):
        with pytest.raises(ValueError, match="unknown codec"):
            registry.run("codec_compress", {"codec": "nope"})
        with pytest.raises(ValueError, match="implies the pipeline codec"):
            registry.run("codec_compress", {
                "codec": "ptq", "stages": [{"codec": "prune"}],
            })


class TestCampaignCodecGrids:
    def test_pipeline_grid_runs_end_to_end(self, tmp_path):
        """Acceptance: a chained Pipeline codec through a campaign spec."""
        spec = parse_spec({
            "name": "codec-grids",
            "grids": [
                {
                    "name": "mx",
                    "codec": "microscaling",
                    "params": {"rows": 16, "cols": 64},
                    "sweep": {"bits": [4, 6]},
                },
                {
                    "name": "chain",
                    "pipeline": [
                        {"codec": "prune", "params": {"num_columns": 2}},
                        {"codec": "ptq", "params": {"bits": 6}},
                        {"codec": "bitplane"},
                    ],
                    "params": {"rows": 16, "cols": 64},
                    "sweep": {"seed": [0, 1]},
                    "depends_on": ["mx"],
                },
            ],
        })
        report = run_campaign(spec, run_dir=tmp_path / "run", jobs=2)
        assert report["total_cells"] == 4
        cells = {cell["cell"]: cell for cell in report["cells"]}
        assert cells["chain/0"]["result"]["codec"] == "pipeline"
        stage_codecs = [s["codec"] for s in cells["chain/0"]["result"]["stages"]]
        assert stage_codecs == ["prune", "ptq", "bitplane"]
        assert cells["mx/0"]["result"]["params"]["bits"] == 4
        # Per-cell provenance digests are the codec result digests.
        assert all(cell["result"]["digest"] for cell in report["cells"])

    def test_codec_grids_survive_checkpoint_resume(self, tmp_path):
        """The canonical spec round-trips through spec.json on resume."""
        from repro.campaign import CampaignRunner

        spec = parse_spec({
            "name": "resume-codec",
            "grids": [
                {"name": "g", "codec": "ptq",
                 "params": {"rows": 16, "cols": 64}, "sweep": {"bits": [4, 8]}},
            ],
        })
        runner = CampaignRunner(spec, tmp_path / "run", jobs=1)
        stats = runner.run()
        assert stats["executed"] == 2

        resumed = CampaignRunner.resume(tmp_path / "run", jobs=1)
        stats = resumed.run()
        assert stats["executed"] == 0 and stats["skipped_checkpointed"] == 2

    def test_codec_grid_digests_canonicalize_defaults(self):
        """Sparse and fully spelled-out codec params share one digest."""
        from repro.campaign import expand_spec

        registry = build_default_registry()
        sparse = parse_spec({
            "name": "canon", "grids": [
                {"name": "g", "codec": "ptq", "params": {"bits": 6}},
            ],
        })
        spelled = parse_spec({
            "name": "canon", "grids": [
                {"name": "g", "codec": "ptq",
                 "params": {"bits": 6, "per_channel": True, "calibrate": None}},
            ],
        })
        sparse_jobs = expand_spec(sparse, registry=registry).jobs
        spelled_jobs = expand_spec(spelled, registry=registry).jobs
        assert [j.digest for j in sparse_jobs] == [j.digest for j in spelled_jobs]

    def test_shared_keys_feed_both_tensor_source_and_codec(self):
        """noisyquant's "seed" lives in both namespaces and gets both values."""
        spec = parse_spec({
            "name": "shared-seed", "grids": [
                {"name": "g", "codec": "noisyquant",
                 "params": {"rows": 16, "cols": 64}, "sweep": {"seed": [3, 4]}},
            ],
        })
        (grid,) = spec.grids
        cells = list(grid.cells())
        assert [cell["seed"] for cell in cells] == [3, 4]          # tensor source
        assert [cell["params"]["seed"] for cell in cells] == [3, 4]  # dither seed

    def test_cli_rejects_codec_name_with_stages(self):
        from repro.cli import main

        with pytest.raises(SystemExit, match="pipeline"):
            main(["codec", "run", "microscaling",
                  "--stages", '[{"codec": "ptq"}]'])

    def test_codec_typos_fail_at_parse_time(self):
        from repro.campaign import CampaignSpecError

        with pytest.raises(CampaignSpecError, match="unknown codec"):
            parse_spec({"name": "x", "grids": [{"name": "g", "codec": "nope"}]})
        with pytest.raises(CampaignSpecError, match="unknown parameter"):
            parse_spec({"name": "x", "grids": [
                {"name": "g", "codec": "ptq", "sweep": {"typo": [1]}},
            ]})
        with pytest.raises(CampaignSpecError, match="exactly one"):
            parse_spec({"name": "x", "grids": [
                {"name": "g", "codec": "ptq", "scenario": "prune_tensor"},
            ]})
        # Pipelines go through the pipeline: sugar so stage lists are always
        # validated and canonicalized; codec:"pipeline" would bypass both.
        with pytest.raises(CampaignSpecError, match="'pipeline' grid field"):
            parse_spec({"name": "x", "grids": [{"name": "g", "codec": "pipeline"}]})


@pytest.fixture(scope="module")
def server():
    server = create_server(port=0, registry=build_default_registry(),
                           cache=ResultCache(max_entries=32), max_workers=2)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server
    server.close()
    thread.join(timeout=10)


@pytest.fixture(scope="module")
def base(server):
    return f"http://127.0.0.1:{server.port}"


def http(base: str, path: str, payload=None, method=None):
    data = json.dumps(payload).encode() if payload is not None else None
    request = urllib.request.Request(
        base + path, data=data, method=method or ("POST" if data else "GET"),
        headers={"Content-Type": "application/json"} if data else {},
    )
    try:
        with urllib.request.urlopen(request) as response:
            return response.status, dict(response.headers), json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, dict(error.headers), json.loads(error.read())


class TestVersionedHTTPAPI:
    def test_v1_codecs_discovery(self, base):
        status, headers, payload = http(base, "/v1/codecs")
        assert status == 200
        assert "Deprecation" not in headers
        names = {entry["name"] for entry in payload["codecs"]}
        assert {"ant", "bitflip", "bitplane", "microscaling", "noisyquant",
                "olive", "pipeline", "prune", "ptq"} <= names
        ptq = next(e for e in payload["codecs"] if e["name"] == "ptq")
        assert "bits" in ptq["params"] and ptq["version"] == "1"

    def test_v1_scenarios_lists_canonical_defaults(self, base):
        status, headers, payload = http(base, "/v1/scenarios")
        assert status == 200 and "Deprecation" not in headers
        by_name = {entry["name"]: entry for entry in payload["scenarios"]}
        assert "codec_compress" in by_name
        assert by_name["codec_compress"]["params"]["rows"] == 128

    def test_v1_compress_round_trip(self, base):
        status, headers, payload = http(base, "/v1/compress?wait=120", {
            "codec": "microscaling", "params": {"bits": 4},
            "rows": 16, "cols": 64,
        })
        assert status == 200
        assert payload["state"] == "done"
        assert payload["result"]["codec"] == "microscaling"
        assert payload["result"]["metrics"]["effective_bits"] == pytest.approx(4.25)

    def test_v1_compress_pipeline_stages(self, base):
        status, _, payload = http(base, "/v1/compress?wait=120", {
            "stages": [{"codec": "prune"}, {"codec": "bitplane"}],
            "rows": 16, "cols": 64,
        })
        assert status == 200 and payload["state"] == "done"
        assert payload["result"]["codec"] == "pipeline"

    def test_v1_compress_validates_before_submit(self, base):
        before = http(base, "/v1/jobs")[2]["total"]
        assert http(base, "/v1/compress", {"codec": "nope"})[0] == 400
        assert http(base, "/v1/compress", {
            "codec": "ptq", "params": {"typo": 1},
        })[0] == 400
        assert http(base, "/v1/compress", {
            "codec": "ptq", "stages": [{"codec": "prune"}],
        })[0] == 400
        # Stage-level params do not silently vanish: they are a 400.
        assert http(base, "/v1/compress", {
            "stages": [{"codec": "prune"}], "params": {"bits": 4},
        })[0] == 400
        assert http(base, "/v1/compress", {"params": {}})[0] == 400
        assert http(base, "/v1/jobs")[2]["total"] == before

    def test_v1_compress_canonicalizes_params_for_the_cache(self, base):
        """Sparse and spelled-out /v1/compress bodies share one job digest."""
        sparse = http(base, "/v1/compress?wait=120", {
            "codec": "microscaling", "params": {"bits": 5},
            "rows": 16, "cols": 64,
        })[2]
        spelled = http(base, "/v1/compress?wait=120", {
            "codec": "microscaling", "params": {"bits": 5, "group_size": 32},
            "rows": 16, "cols": 64,
        })[2]
        assert sparse["digest"] == spelled["digest"]
        assert spelled["cache_hit"]

    def test_v1_jobs_and_health_mirror_legacy(self, base):
        status, headers, payload = http(base, "/v1/health")
        assert status == 200 and payload["api_version"] == "v1"
        assert "Deprecation" not in headers
        status, _, v1_jobs = http(base, "/v1/jobs")
        status_legacy, _, legacy_jobs = http(base, "/jobs")
        assert status == status_legacy == 200
        assert v1_jobs["total"] == legacy_jobs["total"]

    def test_legacy_routes_carry_deprecation_headers(self, base):
        for path in ("/health", "/scenarios", "/cache/stats", "/jobs"):
            status, headers, _ = http(base, path)
            assert status == 200
            assert headers.get("Deprecation") == "true"
            assert f"/v1{path}" in headers.get("Link", "")
        # Legacy POST routes answer with the header too.
        status, headers, _ = http(base, "/jobs?wait=120", {
            "type": "codec_compress",
            "params": {"codec": "ptq", "rows": 16, "cols": 64},
        })
        assert status == 200
        assert headers.get("Deprecation") == "true"

    def test_v1_unknown_endpoint_is_404(self, base):
        assert http(base, "/v1/nope")[0] == 404
        assert http(base, "/v2/health")[0] == 404

    def test_new_endpoints_do_not_leak_onto_the_legacy_surface(self, base):
        """/codecs and /compress never existed unprefixed; they stay /v1-only."""
        assert http(base, "/codecs")[0] == 404
        assert http(base, "/compress", {"codec": "ptq"})[0] == 404

    def test_v1_compress_shares_tensor_source_keys_with_the_codec(self, base):
        """noisyquant's "seed" feeds the tensor AND the dither, like campaigns."""
        one = http(base, "/v1/compress?wait=120", {
            "codec": "noisyquant", "rows": 16, "cols": 64, "seed": 1,
        })[2]
        two = http(base, "/v1/compress?wait=120", {
            "codec": "noisyquant", "rows": 16, "cols": 64, "seed": 2,
        })[2]
        assert one["result"]["params"]["seed"] == 1
        assert two["result"]["params"]["seed"] == 2
        # And the digest matches the equivalent campaign codec: grid cell.
        from repro.campaign import expand_spec

        spec = parse_spec({"name": "s", "grids": [
            {"name": "g", "codec": "noisyquant",
             "params": {"rows": 16, "cols": 64, "seed": 1}},
        ]})
        (job,) = expand_spec(spec, registry=build_default_registry()).jobs
        assert one["digest"] == job.digest

    def test_client_validates_specs_before_submit(self, base):
        from repro.service.client import ServiceClient

        client = ServiceClient(base, retries=0)
        client.validate_job("codec_compress", {"codec": "ptq", "rows": 8})
        with pytest.raises(ValueError, match="unknown scenario"):
            client.validate_job("no_such_scenario")
        with pytest.raises(ValueError, match="unknown parameter"):
            client.validate_job("codec_compress", {"typo": 1})
        assert client.codecs()  # /v1/codecs through the client

    def test_client_compress_convenience(self, base):
        from repro.service.client import ServiceClient

        client = ServiceClient(base, retries=0)
        record = client.compress("ptq", params={"bits": 6}, rows=16, cols=64, wait=120)
        assert record["state"] == "done"
        assert record["result"]["codec"] == "ptq"


class TestDispatchCodecSkew:
    def test_probe_refuses_a_node_missing_a_plan_codec(self, base, tmp_path):
        """Codec-level registry skew is caught at probe time, not per cell."""
        from repro.campaign.dispatch import CampaignDispatcher, DispatchError
        from repro.service.client import ServiceClient

        spec = parse_spec({
            "name": "skew", "grids": [
                {"name": "chain",
                 "pipeline": [{"codec": "prune"}, {"codec": "bitplane"}],
                 "params": {"rows": 16, "cols": 64}},
            ],
        })

        def skewed_factory(url, **kwargs):
            client = ServiceClient(url, retries=0, backoff=0.0)
            real_codecs = client.codecs

            def codecs_without_prune():
                return [c for c in real_codecs() if c["name"] != "prune"]

            client.codecs = codecs_without_prune
            return client

        dispatcher = CampaignDispatcher(
            spec, [base], tmp_path / "run", client_factory=skewed_factory,
        )
        with pytest.raises(DispatchError):
            dispatcher.run()
        (node,) = dispatcher.nodes
        assert not node.alive and "registry skew" in node.reason
        assert "'prune'" in node.reason


class TestAPISurfaceGuard:
    def test_committed_baseline_matches_the_code(self):
        out = subprocess.run(
            [sys.executable, str(REPO_ROOT / "scripts" / "check_api_surface.py")],
            capture_output=True, text=True, cwd=REPO_ROOT,
        )
        assert out.returncode == 0, out.stdout + out.stderr
        assert "API surface OK" in out.stdout
