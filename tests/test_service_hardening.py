"""Regression tests for the hardened HTTP layer: malformed requests, the
catch-all error envelope, cancellation, backpressure, and /jobs pagination."""

from __future__ import annotations

import http.client
import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.service import ResultCache, ScenarioRegistry, create_server


def build_registry():
    """Small controllable registry: echo, a None result, a NaN result, a gate."""
    registry = ScenarioRegistry()
    gate = threading.Event()
    started = threading.Event()
    calls = {"none": 0}

    def echo(value=0):
        return {"value": value}

    def none_result(value=0):
        calls["none"] += 1
        return None

    def nan_result(value=0):
        return {"bad": float("nan")}

    def slow(value=0):
        started.set()
        assert gate.wait(30), "test never released the gate"
        return {"value": value}

    registry.add("echo", "echo the params", echo, {"value": 0})
    registry.add("none", "returns None", none_result, {"value": 0})
    registry.add("nan", "returns a NaN payload", nan_result, {"value": 0})
    registry.add("slow", "blocks until released", slow, {"value": 0})
    registry.gate = gate
    registry.started = started
    registry.calls = calls
    return registry


@pytest.fixture()
def server():
    registry = build_registry()
    server = create_server(port=0, registry=registry,
                           cache=ResultCache(max_entries=32), max_workers=1)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    server.test_registry = registry
    yield server
    registry.gate.set()
    server.close()
    thread.join(timeout=10)


@pytest.fixture()
def base(server):
    return f"http://127.0.0.1:{server.port}"


def get(base: str, path: str) -> tuple[int, dict]:
    try:
        with urllib.request.urlopen(base + path) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def post(base: str, path: str, payload) -> tuple[int, dict]:
    request = urllib.request.Request(
        base + path,
        data=json.dumps(payload).encode("utf-8") if not isinstance(payload, bytes) else payload,
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


class TestMalformedHeaders:
    def _raw_post(self, server, content_length: str) -> tuple[int, dict]:
        connection = http.client.HTTPConnection("127.0.0.1", server.port, timeout=10)
        try:
            connection.putrequest("POST", "/jobs")
            connection.putheader("Content-Type", "application/json")
            connection.putheader("Content-Length", content_length)
            connection.endheaders()
            response = connection.getresponse()
            return response.status, json.loads(response.read())
        finally:
            connection.close()

    def test_non_integer_content_length_is_400_json(self, server):
        status, payload = self._raw_post(server, "not-a-number")
        assert status == 400
        assert "Content-Length" in payload["error"]

    def test_negative_content_length_is_400_json(self, server):
        status, payload = self._raw_post(server, "-5")
        assert status == 400
        assert "Content-Length" in payload["error"]

    def test_oversized_content_length_is_413_json(self, server):
        status, payload = self._raw_post(server, str(1 << 40))
        assert status == 413
        assert "exceeds" in payload["error"]

    def test_service_still_answers_after_malformed_header(self, server, base):
        self._raw_post(server, "garbage")
        assert get(base, "/health")[0] == 200


class TestUnknownFields:
    def test_unknown_submission_fields_are_400(self, base):
        status, payload = post(base, "/jobs", {"type": "echo", "paramz": {}})
        assert status == 400
        assert "paramz" in payload["error"]


class TestErrorEnvelope:
    def test_unserializable_result_is_500_json_not_html(self, base):
        # The job itself succeeds; serializing its NaN payload into the
        # response cannot — previously an unhandled ValueError tore the
        # connection down with no response at all.
        status, payload = post(base, "/jobs?wait=30", {"type": "nan"})
        assert status == 500
        assert "internal server error" in payload["error"]

    def test_keepalive_survives_bad_json_then_reuse(self, server):
        connection = http.client.HTTPConnection("127.0.0.1", server.port, timeout=10)
        try:
            connection.request("POST", "/jobs", body=b"{not json",
                               headers={"Content-Type": "application/json"})
            response = connection.getresponse()
            assert response.status == 400
            json.loads(response.read())
            connection.request("GET", "/health")
            response = connection.getresponse()
            assert response.status == 200
            assert json.loads(response.read())["status"] == "ok"
        finally:
            connection.close()

    def test_service_still_healthy_after_500(self, base):
        post(base, "/jobs?wait=30", {"type": "nan"})
        assert get(base, "/health")[0] == 200


class TestNoneResults:
    def test_none_result_cache_hits(self, server, base):
        # A None result must be a first-class cached value, not a
        # permanently-missing cache entry recomputed on every submission.
        status, first = post(base, "/jobs?wait=30", {"type": "none", "params": {"value": 5}})
        assert status == 200 and first["state"] == "done"
        assert not first["cache_hit"]
        status, second = post(base, "/jobs?wait=30", {"type": "none", "params": {"value": 5}})
        assert status == 200 and second["state"] == "done"
        assert second["cache_hit"]
        assert server.test_registry.calls["none"] == 1
        status, result = get(base, f"/jobs/{second['job_id']}/result")
        assert status == 200 and result["result"] is None


class TestCancellation:
    def test_cancel_queued_job(self, server, base):
        registry = server.test_registry
        _, running = post(base, "/jobs", {"type": "slow", "params": {"value": 1}})
        assert registry.started.wait(10)
        _, queued = post(base, "/jobs", {"type": "echo", "params": {"value": 2}})
        assert queued["state"] == "queued"

        status, cancelled = post(base, f"/jobs/{queued['job_id']}/cancel", {})
        assert status == 200
        assert cancelled["state"] == "cancelled"
        status, record = get(base, f"/jobs/{queued['job_id']}")
        assert record["state"] == "cancelled"

        # The running job cannot be cancelled.
        status, refused = post(base, f"/jobs/{running['job_id']}/cancel", {})
        assert status == 409
        registry.gate.set()

    def test_cancel_unknown_job_is_404(self, base):
        assert post(base, "/jobs/job-999999/cancel", {})[0] == 404

    def test_cancel_finished_job_is_409(self, base):
        _, done = post(base, "/jobs?wait=30", {"type": "echo", "params": {"value": 3}})
        assert done["state"] == "done"
        status, payload = post(base, f"/jobs/{done['job_id']}/cancel", {})
        assert status == 409
        assert "done" in payload["error"]


class TestBackpressure:
    @pytest.fixture()
    def saturated(self):
        registry = build_registry()
        server = create_server(port=0, registry=registry,
                               cache=ResultCache(max_entries=32),
                               max_workers=1, max_queued=2)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        server.test_registry = registry
        yield server, f"http://127.0.0.1:{server.port}"
        registry.gate.set()
        server.close()
        thread.join(timeout=10)

    def test_429_when_queue_full_then_recovers(self, saturated):
        server, base = saturated
        registry = server.test_registry
        post(base, "/jobs", {"type": "slow", "params": {"value": 1}})
        assert registry.started.wait(10)
        post(base, "/jobs", {"type": "echo", "params": {"value": 2}})
        status, payload = post(base, "/jobs", {"type": "echo", "params": {"value": 3}})
        assert status == 429
        assert payload["max_queued"] == 2
        assert "retry" in payload["error"]

        # Duplicates of queued work are dedup/cache hits, never rejected.
        status, dedup = post(base, "/jobs", {"type": "echo", "params": {"value": 2}})
        assert status in (200, 202)

        registry.gate.set()
        # Once the queue drains, the rejected job is accepted (the drain is
        # asynchronous, so retry through the tail of the 429 window).
        import time

        deadline = time.perf_counter() + 10
        while True:
            status, accepted = post(base, "/jobs?wait=30",
                                    {"type": "echo", "params": {"value": 3}})
            if status != 429:
                break
            assert time.perf_counter() < deadline, "queue never drained"
            time.sleep(0.02)
        assert status == 200 and accepted["state"] == "done"


class TestJobsPagination:
    def test_state_filter_offset_and_limit(self, server, base):
        for value in range(4):
            post(base, "/jobs?wait=30", {"type": "echo", "params": {"value": value}})
        status, everything = get(base, "/jobs?state=done")
        assert status == 200
        assert everything["total"] == 4
        assert [job["state"] for job in everything["jobs"]] == ["done"] * 4

        status, window = get(base, "/jobs?state=done&offset=1&limit=2")
        assert window["total"] == 4
        assert len(window["jobs"]) == 2
        assert window["offset"] == 1 and window["limit"] == 2
        assert window["jobs"] == everything["jobs"][1:3]

        status, empty = get(base, "/jobs?state=failed")
        assert status == 200 and empty["total"] == 0 and empty["jobs"] == []

    def test_invalid_pagination_params_are_400(self, base):
        assert get(base, "/jobs?state=nope")[0] == 400
        assert get(base, "/jobs?offset=-1")[0] == 400
        assert get(base, "/jobs?limit=abc")[0] == 400
