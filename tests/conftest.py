"""Shared fixtures for the test suite.

The heavy objects (synthetic model weights, trained MLP, accelerator sweeps)
are session-scoped so the several hundred tests stay fast.

Hypothesis runs on a pinned, derandomized profile by default: randomized
search stores falsifying examples in a local ``.hypothesis`` replay database,
so a latent seed-era counterexample can surface "spontaneously" in the middle
of an unrelated change and then fail deterministically on every later run.
CI and the tier-1 gate need reproducible verdicts, so the ``ci`` profile
derandomizes example generation and disables the replay database entirely;
opt back into randomized exploration with ``HYPOTHESIS_PROFILE=explore`` when
hunting for new counterexamples.
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import settings

from repro.nn.model_zoo import get_model
from repro.nn.synthetic import synthesize_model

settings.register_profile("ci", derandomize=True, database=None)
settings.register_profile("explore", settings.default)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "ci"))


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture()
def fresh_rng() -> np.random.Generator:
    return np.random.default_rng(0)


@pytest.fixture(scope="session")
def int8_matrix() -> np.ndarray:
    """A Gaussian-ish INT8 weight matrix used across many unit tests."""
    generator = np.random.default_rng(7)
    values = np.clip(np.round(generator.normal(0.0, 24.0, size=(64, 256))), -128, 127)
    return values.astype(np.int64)


@pytest.fixture(scope="session")
def small_resnet_weights():
    """Small sampled synthetic weights for ResNet-50 (used by accelerator tests)."""
    return synthesize_model(get_model("ResNet-50"), seed=0, max_channels=64, max_reduction=256)


@pytest.fixture(scope="session")
def small_vit_weights():
    """Small sampled synthetic weights for ViT-Small."""
    return synthesize_model(get_model("ViT-Small"), seed=0, max_channels=64, max_reduction=256)
