"""Tests for the process-pool execution paths added in PR 2.

Covers the three fan-out layers: ``BenchmarkSuite.performances`` with
``jobs > 1``, the standalone suite tasks behind ``repro all --jobs``, and the
service worker pool's process mode.  Every parallel path must produce results
identical to its serial counterpart — all workloads are deterministic in
their inputs.
"""

from __future__ import annotations

import pytest

from repro.eval.benchmarks import BenchmarkSuite, performance_summary
from repro.eval.experiments import (
    SUITE_TASKS,
    _TASK_SUBMIT_ORDER,
    _run_suite_task,
    json_payload,
    table1_models,
)
from repro.service import JobState, WorkerPool, build_default_registry


SMALL = dict(seed=0, max_channels=32, max_reduction=128)


class TestSuiteProcessPool:
    def test_parallel_matches_serial(self):
        serial = BenchmarkSuite(**SMALL).performances(
            ["ResNet-50"], ["Stripes", "Bitlet"]
        )
        parallel = BenchmarkSuite(**SMALL, jobs=2).performances(
            ["ResNet-50"], ["Stripes", "Bitlet"]
        )
        assert serial.keys() == parallel.keys()
        for model in serial:
            assert serial[model].keys() == parallel[model].keys()
            for accel in serial[model]:
                assert performance_summary(serial[model][accel]) == pytest.approx(
                    performance_summary(parallel[model][accel])
                )

    def test_jobs_field_does_not_change_config_digest(self):
        assert (
            BenchmarkSuite(**SMALL).config_digest()
            == BenchmarkSuite(**SMALL, jobs=4).config_digest()
        )


class TestSuiteTasks:
    def test_task_lists_cover_every_experiment_once(self):
        assert sorted(SUITE_TASKS) == sorted(_TASK_SUBMIT_ORDER)
        flattened = [
            name for task in SUITE_TASKS for name in task.split("+")
        ]
        assert len(flattened) == len(set(flattened)) == 16

    def test_standalone_task_matches_serial_payload(self):
        payload = _run_suite_task("table1", fast=True, seed=0)
        assert payload == {"table1": json_payload(table1_models())}


class TestProcessWorkerPool:
    def test_process_pool_runs_and_caches_jobs(self):
        params = {"rows": 8, "cols": 64, "seed": 1}
        with WorkerPool(build_default_registry(), max_workers=2, use_processes=True) as pool:
            job = pool.run("prune_tensor", params, timeout=120)
            assert job.state is JobState.DONE, job.error
            assert job.result["shape"] == [8, 64]
            again = pool.run("prune_tensor", params, timeout=120)
            assert again.cache_hit
            assert again.result == job.result
            assert pool.stats()["worker_kind"] == "process"

    def test_process_pool_captures_failures(self):
        with WorkerPool(build_default_registry(), max_workers=1, use_processes=True) as pool:
            job = pool.run("prune_tensor", {"rows": -1}, timeout=120)
            assert job.state is JobState.FAILED
            assert "rows and cols must be positive" in job.error

    def test_thread_pool_reports_kind(self):
        with WorkerPool(build_default_registry(), max_workers=1) as pool:
            assert pool.stats()["worker_kind"] == "thread"
