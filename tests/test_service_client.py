"""Tests for the typed stdlib service client (retries, backoff, errors)."""

from __future__ import annotations

import threading

import pytest

from repro.service import ResultCache, create_server
from repro.service.client import (
    JobFailedError,
    ServiceClient,
    ServiceRequestError,
    ServiceUnavailable,
)
from tests.test_service_hardening import build_registry


@pytest.fixture(scope="module")
def server():
    server = create_server(port=0, registry=build_registry(),
                           cache=ResultCache(max_entries=32), max_workers=2)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server
    server.close()
    thread.join(timeout=10)


@pytest.fixture()
def client(server):
    return ServiceClient(f"http://127.0.0.1:{server.port}", retries=1, backoff=0.01)


class TestEndpoints:
    def test_health_and_scenarios(self, client):
        assert client.health()["status"] == "ok"
        assert {entry["name"] for entry in client.scenarios()} >= {"echo", "slow"}

    def test_submit_wait_and_result(self, client):
        record = client.submit("echo", {"value": 11}, wait=30)
        assert record["state"] == "done"
        assert client.result(record["job_id"])["result"] == {"value": 11}
        assert client.job(record["job_id"])["state"] == "done"

    def test_jobs_listing_pagination(self, client):
        client.submit("echo", {"value": 21}, wait=30)
        client.submit("echo", {"value": 22}, wait=30)
        listing = client.jobs(state="done", limit=1)
        assert listing["total"] >= 2 and len(listing["jobs"]) == 1

    def test_run_job_returns_payload(self, client):
        assert client.run_job("echo", {"value": 33}) == {"value": 33}

    def test_run_job_raises_on_remote_failure(self, server):
        client = ServiceClient(f"http://127.0.0.1:{server.port}", retries=0)
        record = client.submit("echo", {"bogus": 1}, wait=30)  # unknown param fails the job
        assert record["state"] == "failed"
        with pytest.raises(JobFailedError, match="unknown parameter"):
            client.run_job("echo", {"bogus": 1})


class TestErrorTaxonomy:
    def test_bad_request_is_typed_with_status_and_payload(self, client):
        with pytest.raises(ServiceRequestError) as excinfo:
            client.submit("no-such-scenario", {})
        assert excinfo.value.status == 400
        assert "unknown job type" in excinfo.value.payload["error"]

    def test_unknown_job_is_request_error_not_retried(self, client):
        with pytest.raises(ServiceRequestError) as excinfo:
            client.job("job-999999")
        assert excinfo.value.status == 404

    def test_dead_endpoint_retries_then_raises_unavailable(self):
        sleeps: list[float] = []
        client = ServiceClient(
            "http://127.0.0.1:1", retries=3, backoff=0.5, sleep=sleeps.append
        )
        with pytest.raises(ServiceUnavailable, match="after 4 attempt"):
            client.health()
        assert sleeps == [0.5, 1.0, 2.0], "exponential backoff between retries"

    def test_zero_retries_fails_fast(self):
        sleeps: list[float] = []
        client = ServiceClient("http://127.0.0.1:1", retries=0, sleep=sleeps.append)
        with pytest.raises(ServiceUnavailable, match="after 1 attempt"):
            client.health()
        assert sleeps == []

    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError, match="retries"):
            ServiceClient("http://x", retries=-1)
