"""Tests for the accelerator performance models (Figures 12-15 machinery)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.accelerators import (
    AntAccelerator,
    ArrayConfig,
    BitletAccelerator,
    BitVertAccelerator,
    BitWaveAccelerator,
    GroupCycleStats,
    PragmaticAccelerator,
    SparTenAccelerator,
    StripesAccelerator,
    expected_wave_cycles,
)
from repro.core.global_pruning import CONSERVATIVE_PRESET, MODERATE_PRESET
from repro.nn.model_zoo import get_model
from repro.nn.workloads import layer_workload


SMALL_ARRAY = ArrayConfig()


@pytest.fixture(scope="module")
def resnet_model():
    return get_model("ResNet-50")


@pytest.fixture(scope="module")
def accelerator_results(resnet_model, small_resnet_weights):
    """Run the whole line-up once on small ResNet-50 weights (module-scoped)."""
    accelerators = {
        "Stripes": StripesAccelerator(array=SMALL_ARRAY),
        "Pragmatic": PragmaticAccelerator(array=SMALL_ARRAY),
        "Bitlet": BitletAccelerator(array=SMALL_ARRAY),
        "BitWave": BitWaveAccelerator(array=SMALL_ARRAY),
        "SparTen": SparTenAccelerator(array=SMALL_ARRAY),
        "ANT": AntAccelerator(array=SMALL_ARRAY),
        "BitVert (cons)": BitVertAccelerator(preset=CONSERVATIVE_PRESET, array=SMALL_ARRAY),
        "BitVert (mod)": BitVertAccelerator(preset=MODERATE_PRESET, array=SMALL_ARRAY),
    }
    return {
        name: accel.run_model(resnet_model, small_resnet_weights)
        for name, accel in accelerators.items()
    }


class TestArrayConfig:
    def test_default_matches_paper(self):
        array = ArrayConfig()
        assert array.pe_rows == 16
        assert array.pe_columns == 32
        assert array.lanes_per_pe == 8
        assert array.total_lanes == 4096
        assert array.eight_bit_multiplier_equivalents == 512

    def test_with_columns(self):
        narrow = ArrayConfig().with_columns(4)
        assert narrow.pe_columns == 4
        assert narrow.pe_rows == 16


class TestGroupCycleStats:
    def test_minimal_cannot_exceed_actual(self):
        with pytest.raises(ValueError):
            GroupCycleStats(actual=np.array([2.0]), minimal=np.array([3.0]))

    def test_partition_shape_checked(self):
        with pytest.raises(ValueError):
            GroupCycleStats(
                actual=np.array([2.0, 2.0]),
                minimal=np.array([1.0, 1.0]),
                partition=np.array([0]),
            )


class TestExpectedWaveCycles:
    def test_constant_distribution(self):
        cycles = np.full(100, 5.0)
        assert expected_wave_cycles(cycles, 32) == 5.0

    def test_single_group(self):
        assert expected_wave_cycles(np.array([3.0, 5.0]), 1) == 4.0

    def test_grows_with_parallelism(self):
        rng = np.random.default_rng(0)
        cycles = rng.integers(4, 12, 1000).astype(float)
        assert expected_wave_cycles(cycles, 32) > expected_wave_cycles(cycles, 4)

    def test_bounded_by_max(self):
        rng = np.random.default_rng(0)
        cycles = rng.integers(4, 12, 1000).astype(float)
        assert expected_wave_cycles(cycles, 32) <= cycles.max()

    def test_empty(self):
        assert expected_wave_cycles(np.array([]), 8) == 0.0


class TestCycleModels:
    def test_stripes_is_dense(self, small_resnet_weights):
        stripes = StripesAccelerator(array=SMALL_ARRAY)
        layer = small_resnet_weights["layer2.conv2"]
        stats = stripes.group_cycle_stats(layer)
        assert np.all(stats.actual == 16.0)

    def test_skipping_schemes_never_slower_than_dense(self, small_resnet_weights):
        layer = small_resnet_weights["layer2.conv2"]
        dense_cycles = 16.0
        for accel in (
            PragmaticAccelerator(array=SMALL_ARRAY),
            BitletAccelerator(array=SMALL_ARRAY),
            BitWaveAccelerator(array=SMALL_ARRAY),
            BitVertAccelerator(array=SMALL_ARRAY),
        ):
            stats = accel.group_cycle_stats(layer)
            assert stats.actual.mean() <= dense_cycles
            assert np.all(stats.minimal <= stats.actual)

    def test_bitvert_cycles_bounded_by_stored_columns(self, small_resnet_weights):
        layer = small_resnet_weights["layer2.conv2"]
        accel = BitVertAccelerator(preset=MODERATE_PRESET, array=SMALL_ARRAY)
        stats = accel.group_cycle_stats(layer)
        # Pruned groups need 8 - 4 = 4 cycles, sensitive groups 8; never more.
        assert np.all(stats.actual <= 8.0)
        assert np.all(stats.actual >= 2.0)
        assert stats.partition is not None

    def test_bitvert_mod_faster_than_cons(self, small_resnet_weights):
        layer = small_resnet_weights["layer2.conv2"]
        cons = BitVertAccelerator(preset=CONSERVATIVE_PRESET, array=SMALL_ARRAY)
        mod = BitVertAccelerator(preset=MODERATE_PRESET, array=SMALL_ARRAY)
        assert (
            mod.group_cycle_stats(layer).actual.mean()
            < cons.group_cycle_stats(layer).actual.mean()
        )

    def test_ant_uniform_six_bit(self, small_resnet_weights):
        layer = small_resnet_weights["layer2.conv2"]
        stats = AntAccelerator(array=SMALL_ARRAY).group_cycle_stats(layer)
        assert np.all(stats.actual == 12.0)

    def test_sparten_tracks_activation_sparsity(self, small_resnet_weights):
        layer = small_resnet_weights["layer2.conv2"]
        dense_act = SparTenAccelerator(activation_sparsity=0.0, array=SMALL_ARRAY)
        sparse_act = SparTenAccelerator(activation_sparsity=0.5, array=SMALL_ARRAY)
        assert (
            sparse_act.group_cycle_stats(layer).actual.mean()
            < dense_act.group_cycle_stats(layer).actual.mean()
        )


class TestLayerPerformance:
    def test_layer_run_produces_consistent_breakdown(self, small_resnet_weights):
        accel = PragmaticAccelerator(array=SMALL_ARRAY)
        spec = get_model("ResNet-50").layers[5]
        perf = accel.run_layer(layer_workload(spec), small_resnet_weights[spec.name])
        total = perf.useful_cycles + perf.intra_pe_stall_cycles + perf.inter_pe_stall_cycles
        assert total == pytest.approx(perf.compute_cycles, rel=1e-6)
        assert perf.total_cycles >= perf.compute_cycles
        assert perf.total_energy_pj > 0

    def test_missing_layer_weights_raise(self, resnet_model, small_resnet_weights):
        accel = StripesAccelerator(array=SMALL_ARRAY)
        partial = dict(list(small_resnet_weights.items())[:3])
        with pytest.raises(KeyError):
            accel.run_model(resnet_model, partial)


class TestModelLevelOrderings:
    """The qualitative results of Figures 12/13 on ResNet-50."""

    def test_bitvert_is_fastest(self, accelerator_results):
        stripes = accelerator_results["Stripes"].total_cycles
        for name, result in accelerator_results.items():
            if name.startswith("BitVert"):
                assert result.total_cycles < 0.55 * stripes

    def test_bitvert_moderate_speedup_range(self, accelerator_results):
        speedup = accelerator_results["BitVert (mod)"].speedup_over(accelerator_results["Stripes"])
        assert 2.0 < speedup < 3.6  # paper: ~2.5-3.0x on CNNs

    def test_bitvert_beats_bitwave(self, accelerator_results):
        assert (
            accelerator_results["BitVert (mod)"].total_cycles
            < accelerator_results["BitWave"].total_cycles
        )
        assert (
            accelerator_results["BitVert (cons)"].total_cycles
            < accelerator_results["BitWave"].total_cycles
        )

    def test_bitwave_beats_pragmatic_and_bitlet(self, accelerator_results):
        assert (
            accelerator_results["BitWave"].total_cycles
            < accelerator_results["Pragmatic"].total_cycles
        )
        assert (
            accelerator_results["BitWave"].total_cycles
            < accelerator_results["Bitlet"].total_cycles
        )

    def test_every_skipping_design_beats_stripes(self, accelerator_results):
        stripes = accelerator_results["Stripes"].total_cycles
        for name in ("Pragmatic", "Bitlet", "BitWave", "ANT"):
            assert accelerator_results[name].total_cycles <= stripes * 1.001

    def test_sparten_has_worst_energy(self, accelerator_results):
        sparten = accelerator_results["SparTen"].total_energy_pj
        for name, result in accelerator_results.items():
            if name != "SparTen":
                assert result.total_energy_pj < sparten

    def test_bitvert_saves_energy_vs_stripes(self, accelerator_results):
        assert (
            accelerator_results["BitVert (mod)"].total_energy_pj
            < accelerator_results["Stripes"].total_energy_pj
        )

    def test_energy_components_sum(self, accelerator_results):
        result = accelerator_results["BitVert (mod)"]
        assert result.total_energy_pj == pytest.approx(
            result.on_chip_energy_pj + result.off_chip_energy_pj, rel=1e-9
        )

    def test_cycle_breakdown_normalized(self, accelerator_results):
        for result in accelerator_results.values():
            breakdown = result.cycle_breakdown()
            assert sum(breakdown.values()) == pytest.approx(1.0, rel=1e-6)

    def test_bitvert_has_less_inter_pe_stall_than_pragmatic(self, accelerator_results):
        bitvert = accelerator_results["BitVert (mod)"].cycle_breakdown()
        pragmatic = accelerator_results["Pragmatic"].cycle_breakdown()
        assert bitvert["inter_pe_stall"] < pragmatic["inter_pe_stall"]

    def test_edp_positive(self, accelerator_results):
        for result in accelerator_results.values():
            assert result.energy_delay_product > 0


class TestLoadBalanceScaling:
    def test_pragmatic_speedup_drops_with_more_columns(self, resnet_model, small_resnet_weights):
        # Figure 14: load imbalance grows with the number of PE columns for
        # unstructured schemes, while BitVert stays nearly constant.
        speedups = {}
        for columns in (2, 32):
            array = ArrayConfig().with_columns(columns)
            stripes = StripesAccelerator(array=array).run_model(resnet_model, small_resnet_weights)
            pragmatic = PragmaticAccelerator(array=array).run_model(
                resnet_model, small_resnet_weights
            )
            speedups[columns] = pragmatic.speedup_over(stripes)
        assert speedups[32] <= speedups[2] + 1e-9

    def test_bitvert_speedup_stable_with_columns(self, resnet_model, small_resnet_weights):
        speedups = {}
        for columns in (2, 32):
            array = ArrayConfig().with_columns(columns)
            stripes = StripesAccelerator(array=array).run_model(resnet_model, small_resnet_weights)
            bitvert = BitVertAccelerator(preset=MODERATE_PRESET, array=array).run_model(
                resnet_model, small_resnet_weights
            )
            speedups[columns] = bitvert.speedup_over(stripes)
        # The structured sparsity keeps the compute-side speedup flat; the
        # small residual drop comes from layers turning memory-bound once the
        # compute is 16x wider, not from load imbalance.
        assert speedups[32] >= 0.8 * speedups[2]
