"""Tests for the component-level PE area/power model (Tables IV, V, VI)."""

from __future__ import annotations

import pytest

from repro.accelerators.area_power import (
    DEFAULT_GATE_COSTS,
    GateCosts,
    PAPER_TABLE_IV,
    PAPER_TABLE_V,
    PE_BUILDERS,
    bitlet_pe,
    bitvert_pe,
    bitwave_pe,
    olive_pe,
    pragmatic_pe,
    stripes_pe,
)


class TestGateCosts:
    def test_mux_scales_with_inputs_and_width(self):
        costs = DEFAULT_GATE_COSTS
        assert costs.mux(8, 8) > costs.mux(4, 8) > costs.mux(2, 8)
        assert costs.mux(4, 16) == pytest.approx(2 * costs.mux(4, 8))

    def test_mux_single_input_is_free(self):
        assert DEFAULT_GATE_COSTS.mux(1, 8) == 0.0

    def test_mux_rejects_zero_inputs(self):
        with pytest.raises(ValueError):
            DEFAULT_GATE_COSTS.mux(0, 8)

    def test_adder_tree_grows_with_terms(self):
        costs = DEFAULT_GATE_COSTS
        assert costs.adder_tree(16, 8) > costs.adder_tree(8, 8) > costs.adder_tree(2, 8)

    def test_barrel_shifter_stages(self):
        costs = DEFAULT_GATE_COSTS
        assert costs.barrel_shifter(8, 8) == pytest.approx(3 * costs.shift_stage * 8)


class TestPaperTableV:
    """The model must reproduce the area/power relationships of Table V."""

    def test_all_builders_positive(self):
        for builder in PE_BUILDERS.values():
            design = builder()
            assert design.area_um2 > 0
            assert design.power_mw > 0

    def test_area_ordering_matches_paper(self):
        areas = {name: PE_BUILDERS[name]().area_um2 for name in PAPER_TABLE_V}
        assert areas["Stripes"] < areas["BitWave"]
        assert areas["BitWave"] < areas["BitVert"]
        assert areas["BitVert"] <= areas["Pragmatic"] * 1.01
        assert areas["Pragmatic"] < areas["Bitlet"]

    def test_bitlet_is_about_3x_stripes(self):
        ratio = bitlet_pe().area_um2 / stripes_pe().area_um2
        assert 2.6 < ratio < 3.6  # paper: 3.13x

    def test_pragmatic_ratio(self):
        ratio = pragmatic_pe().area_um2 / stripes_pe().area_um2
        assert 1.5 < ratio < 2.0  # paper: 1.73x

    def test_absolute_areas_within_tolerance(self):
        for name, reference in PAPER_TABLE_V.items():
            area = PE_BUILDERS[name]().area_um2
            assert area == pytest.approx(reference["total_um2"], rel=0.35)

    def test_power_within_tolerance(self):
        for name, reference in PAPER_TABLE_V.items():
            power = PE_BUILDERS[name]().power_mw
            assert power == pytest.approx(reference["power_mw"], rel=0.25)

    def test_bitvert_power_lower_than_pragmatic_despite_similar_area(self):
        assert bitvert_pe().power_mw < pragmatic_pe().power_mw

    def test_energy_per_cycle(self):
        design = stripes_pe()
        assert design.energy_per_cycle_pj(0.8) == pytest.approx(design.power_mw / 0.8)

    def test_breakdown_sums_to_total(self):
        design = bitvert_pe()
        assert sum(design.breakdown().values()) == pytest.approx(design.area_um2)


class TestPaperTableIV:
    """BitVert PE design-space relationships."""

    def test_optimization_always_helps(self):
        for sub_group in (16, 8, 4):
            assert (
                bitvert_pe(sub_group=sub_group, optimized=True).area_um2
                < bitvert_pe(sub_group=sub_group, optimized=False).area_um2
            )

    def test_sub_group_8_optimized_is_the_minimum(self):
        areas = {
            (sub, opt): bitvert_pe(sub_group=sub, optimized=opt).area_um2
            for sub in (16, 8, 4)
            for opt in (False, True)
        }
        assert min(areas, key=areas.get) == (8, True)

    def test_sub_group_16_unoptimized_is_the_maximum(self):
        areas = {
            (sub, opt): bitvert_pe(sub_group=sub, optimized=opt).area_um2
            for sub in (16, 8, 4)
            for opt in (False, True)
        }
        assert max(areas, key=areas.get) == (16, False)

    def test_sub_group_4_pays_for_extra_subtractors(self):
        assert (
            bitvert_pe(sub_group=4, optimized=True).area_um2
            > bitvert_pe(sub_group=8, optimized=True).area_um2
        )

    def test_paper_reference_is_recorded_for_all_points(self):
        assert set(PAPER_TABLE_IV) == {(s, o) for s in (16, 8, 4) for o in (False, True)}

    def test_invalid_sub_group(self):
        with pytest.raises(ValueError):
            bitvert_pe(sub_group=5)


class TestOliveAndBitWave:
    def test_olive_pe_much_smaller_than_bitvert(self):
        assert olive_pe().area_um2 < 0.6 * bitvert_pe().area_um2

    def test_bitvert_perf_per_area_beats_olive(self):
        # Table VI: 4x throughput at ~2.5x area -> >1x perf/area.
        bitvert = bitvert_pe()
        olive = olive_pe()
        perf_per_area_ratio = (4.0 / bitvert.area_um2) / (1.0 / olive.area_um2)
        assert perf_per_area_ratio > 1.3

    def test_bitwave_pays_for_complementers(self):
        assert bitwave_pe().area_um2 > stripes_pe().area_um2

    def test_custom_gate_costs_scale_results(self):
        expensive = GateCosts(full_adder=5.0, flip_flop=8.0)
        assert stripes_pe(expensive).area_um2 > stripes_pe().area_um2
