"""Tests for the MSE / KL-divergence / effective-bit metrics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.metrics import (
    cosine_similarity,
    effective_bits,
    kl_divergence,
    mse,
    normalized_kl,
    rmse,
    sqnr_db,
)


class TestMse:
    def test_identical_is_zero(self, int8_matrix):
        assert mse(int8_matrix, int8_matrix) == 0.0

    def test_known_value(self):
        assert mse(np.array([0, 0]), np.array([1, 3])) == pytest.approx(5.0)

    def test_rmse(self):
        assert rmse(np.array([0, 0]), np.array([3, 4])) == pytest.approx(np.sqrt(12.5))

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            mse(np.zeros(3), np.zeros(4))

    def test_empty_is_zero(self):
        assert mse(np.array([]), np.array([])) == 0.0

    @given(st.lists(st.integers(-100, 100), min_size=1, max_size=50))
    @settings(max_examples=40, deadline=None)
    def test_nonnegative(self, values):
        array = np.array(values)
        shifted = array + 1
        assert mse(array, shifted) >= 0.0


class TestKlDivergence:
    def test_identical_distributions_near_zero(self, int8_matrix):
        assert kl_divergence(int8_matrix, int8_matrix) == pytest.approx(0.0, abs=1e-9)

    def test_collapsed_levels_increase_divergence(self, int8_matrix):
        coarse = (int8_matrix // 8) * 8
        very_coarse = (int8_matrix // 32) * 32
        assert kl_divergence(int8_matrix, coarse) < kl_divergence(int8_matrix, very_coarse)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            kl_divergence(np.array([]), np.array([]))

    def test_constant_tensor(self):
        assert kl_divergence(np.zeros(10), np.zeros(10)) == 0.0

    def test_nonnegative(self, int8_matrix):
        noisy = np.clip(int8_matrix + 3, -128, 127)
        assert kl_divergence(int8_matrix, noisy) >= 0.0

    def test_float_inputs_use_default_bins(self):
        rng = np.random.default_rng(0)
        a = rng.normal(size=1000)
        b = a + 0.01
        assert kl_divergence(a, b) >= 0.0

    def test_explicit_bins(self, int8_matrix):
        value = kl_divergence(int8_matrix, int8_matrix, bins=64)
        assert value == pytest.approx(0.0, abs=1e-9)


class TestNormalizedKl:
    def test_max_normalization(self):
        normalized = normalized_kl({"a": 2.0, "b": 1.0, "c": 0.5})
        assert normalized["a"] == 1.0
        assert normalized["b"] == 0.5

    def test_reference(self):
        normalized = normalized_kl({"a": 2.0, "b": 1.0}, reference="b")
        assert normalized["a"] == 2.0

    def test_empty(self):
        assert normalized_kl({}) == {}

    def test_all_zero(self):
        assert normalized_kl({"a": 0.0, "b": 0.0}) == {"a": 0.0, "b": 0.0}


class TestEffectiveBits:
    def test_paper_moderate_setting(self):
        # 4 pruned columns, 8-bit metadata, group 32 -> 4.25 effective bits.
        assert effective_bits(4, 8, 32) == pytest.approx(4.25)

    def test_paper_conservative_setting(self):
        assert effective_bits(6, 8, 32) == pytest.approx(6.25)

    def test_no_metadata(self):
        assert effective_bits(8) == 8.0

    def test_invalid_group(self):
        with pytest.raises(ValueError):
            effective_bits(4, 8, 0)


class TestCosineAndSqnr:
    def test_cosine_identical(self, int8_matrix):
        assert cosine_similarity(int8_matrix, int8_matrix) == pytest.approx(1.0)

    def test_cosine_opposite(self):
        a = np.array([1.0, 2.0])
        assert cosine_similarity(a, -a) == pytest.approx(-1.0)

    def test_cosine_zero_vectors(self):
        assert cosine_similarity(np.zeros(4), np.zeros(4)) == 1.0
        assert cosine_similarity(np.zeros(4), np.ones(4)) == 0.0

    def test_cosine_shape_mismatch(self):
        with pytest.raises(ValueError):
            cosine_similarity(np.zeros(3), np.zeros(4))

    def test_sqnr_infinite_when_exact(self, int8_matrix):
        assert sqnr_db(int8_matrix, int8_matrix) == float("inf")

    def test_sqnr_decreases_with_noise(self, int8_matrix):
        small = np.clip(int8_matrix + 1, -128, 127)
        large = np.clip(int8_matrix + 8, -128, 127)
        assert sqnr_db(int8_matrix, small) > sqnr_db(int8_matrix, large)

    def test_sqnr_zero_signal(self):
        assert sqnr_db(np.zeros(4), np.ones(4)) == float("-inf")
