"""Tests for the experiment harness (reduced configurations of every table/figure)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval import experiments as exp
from repro.eval.benchmarks import ACCELERATOR_NAMES, BENCHMARK_MODEL_NAMES, BenchmarkSuite
from repro.eval.reporting import format_table, geometric_mean


@pytest.fixture(scope="module")
def small_suite() -> BenchmarkSuite:
    return BenchmarkSuite(seed=0, max_channels=64, max_reduction=256)


class TestReporting:
    def test_format_table_alignment(self):
        rows = [{"a": 1, "b": 2.5}, {"a": 10, "b": 0.125}]
        text = format_table(rows, title="demo")
        assert "demo" in text
        assert "a" in text.splitlines()[1]
        assert len(text.splitlines()) == 5

    def test_format_table_empty(self):
        assert "(empty)" in format_table([])

    def test_format_missing_keys(self):
        text = format_table([{"a": 1}, {"a": 2, "b": 3}], columns=["a", "b"])
        assert "b" in text

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        assert geometric_mean([]) == 0.0
        with pytest.raises(ValueError):
            geometric_mean([1.0, -1.0])


class TestBenchmarkSuite:
    def test_model_and_weight_caching(self, small_suite):
        first = small_suite.weights("ViT-Small")
        second = small_suite.weights("ViT-Small")
        assert first is second

    def test_accelerator_lineup_complete(self, small_suite):
        accelerators = small_suite.accelerators()
        assert set(accelerators) == set(ACCELERATOR_NAMES)

    def test_benchmark_names_match_table1(self):
        assert len(BENCHMARK_MODEL_NAMES) == 7


class TestMotivationAndSparsityExperiments:
    def test_figure1_bbs_preserves_levels_and_kl(self):
        result = exp.figure1_motivation()
        by_method = {row["method"]: row for row in result["rows"]}
        ptq = by_method["PTQ INT5"]
        bbs = [row for name, row in by_method.items() if name.startswith("BBS")][0]
        zero_col = [row for name, row in by_method.items() if "zero columns" in name][0]
        # Figure 1's claims: BBS has the lowest KL divergence and keeps nearly
        # all quantization levels; PTQ loses most levels.
        assert bbs["kl_divergence"] < zero_col["kl_divergence"] < ptq["kl_divergence"]
        assert bbs["quantization_levels"] > zero_col["quantization_levels"]
        assert bbs["mse"] < zero_col["mse"]

    def test_figure3_sparsity_pattern(self):
        result = exp.figure3_sparsity_comparison(models=["ResNet-50", "ViT-Base"])
        for row in result["rows"]:
            assert row["value"] < 0.1
            assert 0.4 < row["bit_twos_complement"] < 0.6
            assert row["bit_sign_magnitude"] > row["bit_twos_complement"]
            assert row["bbs"] >= 0.5

    def test_figure6_binary_pruning_beats_zero_column(self):
        result = exp.figure6_kl_divergence()
        for row in result["rows"]:
            assert row["zero_column_norm_kl"] == pytest.approx(1.0)
            assert row["rounded_average_norm_kl"] < 1.0
            assert row["zero_point_shift_norm_kl"] < 1.0


class TestAccuracyExperiments:
    def test_table1_matches_published_numbers(self):
        rows = exp.table1_models()["rows"]
        by_model = {row["model"]: row for row in rows}
        assert by_model["ResNet-50"]["fp32_accuracy"] == 76.13
        assert by_model["BERT-SST2"]["int8_accuracy"] == 91.63
        assert len(rows) == 7

    def test_figure11_bbs_preserves_distribution_better(self):
        result = exp.figure11_accuracy(models=["ResNet-34"], seed=0, include_mlp=False)
        by_method = {row["method"]: row for row in result["rows"]}
        assert by_method["bbs_mod"]["mean_kl"] < by_method["bitwave4"]["mean_kl"]
        assert by_method["bbs_mod"]["mean_kl"] < by_method["ptq4"]["mean_kl"]
        # Conservative pruning perturbs the weights less than moderate pruning.
        assert by_method["bbs_cons"]["mean_mse"] < by_method["bbs_mod"]["mean_mse"]
        # Effective bit widths follow the paper (cons > mod).
        assert by_method["bbs_cons"]["effective_bits"] > by_method["bbs_mod"]["effective_bits"]

    def test_table2_bbs_beats_ant(self):
        rows = exp.table2_ant_comparison()["rows"]
        for row in rows:
            assert row["bbs_better"]
            assert row["bbs_mod_bits"] < 8.0

    def test_table3_bbs_on_pareto(self):
        rows = exp.table3_ptq_comparison()["rows"]
        for model in ("ViT-Small", "ViT-Base"):
            subset = {row["method"]: row for row in rows if row["model"] == model}
            assert subset["BBS (mod)"]["mean_kl"] < subset["Microscaling (6-bit)"]["mean_kl"]
            assert subset["BBS (mod)"]["mean_kl"] < subset["NoisyQuant (6-bit)"]["mean_kl"]


class TestAcceleratorExperiments:
    @pytest.fixture(scope="class")
    def fig12(self, small_suite):
        return exp.figure12_speedup(models=["ResNet-50", "ViT-Small"], suite=small_suite)

    def test_figure12_orderings(self, fig12):
        geomean = [row for row in fig12["rows"] if row["model"] == "Geomean"][0]
        assert geomean["Stripes"] == pytest.approx(1.0)
        assert geomean["BitVert (moderate)"] > geomean["BitVert (conservative)"]
        assert geomean["BitVert (conservative)"] > geomean["BitWave"]
        assert geomean["BitWave"] > geomean["Bitlet"] > 1.0
        assert 2.0 < geomean["BitVert (moderate)"] < 3.6

    def test_figure13_energy_orderings(self, fig12, small_suite):
        result = exp.figure13_energy(
            models=["ResNet-50", "ViT-Small"], suite=small_suite, results=fig12["results"]
        )
        geomeans = {
            row["accelerator"]: row["norm_energy"]
            for row in result["rows"]
            if row["model"] == "Geomean"
        }
        assert geomeans["SparTen"] == pytest.approx(1.0)
        assert geomeans["BitVert (moderate)"] < geomeans["BitWave"] < 1.0
        assert geomeans["BitVert (moderate)"] < geomeans["Stripes"]

    def test_figure14_load_balance(self, small_suite):
        result = exp.figure14_load_balance(
            models=["ResNet-50"], column_counts=(2, 32), suite=small_suite
        )
        by_columns = {row["pe_columns"]: row for row in result["rows"]}
        # Unstructured schemes lose speedup at higher parallelism; BitVert
        # remains the fastest at every width.
        assert by_columns[32]["Bitlet"] <= by_columns[2]["Bitlet"] + 1e-9
        for columns in (2, 32):
            row = by_columns[columns]
            assert row["BitVert"] > row["BitWave"] > 0
            assert row["BitVert"] > row["Pragmatic"]

    def test_figure15_breakdown(self, small_suite):
        result = exp.figure15_stall_breakdown(
            models=["ResNet-50"], column_counts=(32,), suite=small_suite
        )
        by_accel = {row["accelerator"]: row for row in result["rows"]}
        for row in result["rows"]:
            assert row["useful"] + row["intra_pe_stall"] + row["inter_pe_stall"] == pytest.approx(1.0)
        assert by_accel["BitVert"]["useful"] > by_accel["BitWave"]["useful"]
        assert by_accel["BitVert"]["inter_pe_stall"] <= by_accel["Bitlet"]["inter_pe_stall"]


class TestHardwareTables:
    def test_table4_design_space(self):
        rows = exp.table4_pe_design_space()["rows"]
        by_config = {(row["sub_group"], row["optimized"]): row for row in rows}
        assert by_config[(8, True)]["model_area_um2"] == min(
            row["model_area_um2"] for row in rows
        )
        assert len(rows) == 6

    def test_table5_comparison(self):
        rows = exp.table5_pe_comparison()["rows"]
        by_name = {row["accelerator"]: row for row in rows}
        assert by_name["Bitlet"]["model_area_ratio"] > 2.5
        assert by_name["Stripes"]["model_area_ratio"] == pytest.approx(1.0)

    def test_table6_perf_per_area(self):
        rows = exp.table6_olive_pe()["rows"]
        bitvert = [row for row in rows if row["pe"].startswith("BitVert")][0]
        assert bitvert["norm_perf"] == pytest.approx(4.0)
        assert bitvert["norm_perf_per_area"] > 1.2


class TestParetoAndLlm:
    def test_figure16_bitvert_on_pareto(self, small_suite):
        result = exp.figure16_pareto(suite=small_suite)
        rows = result["rows"]
        bitvert_rows = [row for row in rows if row["design"].startswith("BitVert")]
        others = [row for row in rows if not row["design"].startswith("BitVert")]
        best_other_edp = min(row["norm_edp"] for row in others)
        # At least one BitVert configuration has both lower EDP than every
        # baseline and a small accuracy-loss proxy.
        assert any(row["norm_edp"] < best_other_edp for row in bitvert_rows)
        assert all(0.0 <= row["norm_edp"] <= 1.0 for row in rows)

    def test_figure17_llm_orderings(self):
        result = exp.figure17_llm()
        by_method = {row["method"]: row for row in result["rows"]}
        cons = by_method["BBS conservative (6.25 bits)"]
        mod = by_method["BBS moderate (4.25 bits)"]
        olive = by_method["Olive (4 bits)"]
        # Figure 17: conservative BBS is nearly lossless; moderate BBS beats
        # Olive at a similar footprint.
        assert cons["output_distortion"] < mod["output_distortion"]
        assert mod["output_distortion"] < olive["output_distortion"]
        assert np.isclose(mod["effective_bits"], 4.25)
