"""Tests for weight grouping and the sparsity statistics of Figure 3."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.grouping import group_weights, ungroup_weights
from repro.core.sparsity import (
    bbs_effectual_bits_per_vector,
    bbs_sparsity,
    bit_sparsity_sign_magnitude,
    bit_sparsity_twos_complement,
    effectual_bits_per_vector,
    sparsity_report,
    value_sparsity,
)


class TestGrouping:
    def test_exact_division(self, int8_matrix):
        grouped = group_weights(int8_matrix, 32)
        assert grouped.groups.shape == (64, 8, 32)
        assert grouped.pad == 0

    def test_padding(self):
        weights = np.arange(2 * 50).reshape(2, 50)
        grouped = group_weights(weights, 32)
        assert grouped.pad == 14
        assert grouped.groups.shape == (2, 2, 32)
        # Padding is zeros.
        assert grouped.groups[0, 1, -14:].sum() == 0

    def test_roundtrip(self, int8_matrix):
        grouped = group_weights(int8_matrix, 32)
        assert np.array_equal(ungroup_weights(grouped), int8_matrix)

    def test_roundtrip_with_padding(self):
        weights = np.arange(3 * 45).reshape(3, 45)
        grouped = group_weights(weights, 16)
        assert np.array_equal(ungroup_weights(grouped), weights)

    def test_flat_groups(self, int8_matrix):
        grouped = group_weights(int8_matrix, 32)
        assert grouped.flat_groups().shape == (64 * 8, 32)

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            group_weights(np.arange(10), 4)

    def test_rejects_bad_group_size(self, int8_matrix):
        with pytest.raises(ValueError):
            group_weights(int8_matrix, 0)

    @given(
        st.integers(1, 8),
        st.integers(1, 70),
        st.sampled_from([4, 8, 16, 32]),
    )
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property(self, channels, reduction, group_size):
        rng = np.random.default_rng(channels * 100 + reduction)
        weights = rng.integers(-128, 128, size=(channels, reduction))
        grouped = group_weights(weights, group_size)
        assert np.array_equal(ungroup_weights(grouped), weights)


class TestValueSparsity:
    def test_all_zero(self):
        assert value_sparsity(np.zeros(10)) == 1.0

    def test_no_zero(self):
        assert value_sparsity(np.ones(10)) == 0.0

    def test_half(self):
        assert value_sparsity(np.array([0, 1, 0, 2])) == 0.5

    def test_empty(self):
        assert value_sparsity(np.array([])) == 0.0

    def test_int8_dnn_weights_have_low_value_sparsity(self, int8_matrix):
        # Figure 3: value sparsity of 8-bit quantized DNNs is below 5 %.
        assert value_sparsity(int8_matrix) < 0.10


class TestBitSparsity:
    def test_zero_tensor_twos_complement(self):
        assert bit_sparsity_twos_complement(np.zeros(8, dtype=np.int64)) == 1.0

    def test_minus_one_tensor(self):
        assert bit_sparsity_twos_complement(np.full(8, -1)) == 0.0

    def test_gaussian_weights_about_half(self, int8_matrix):
        sparsity = bit_sparsity_twos_complement(int8_matrix)
        assert 0.4 < sparsity < 0.6

    def test_sign_magnitude_higher_than_twos_complement(self, int8_matrix):
        assert bit_sparsity_sign_magnitude(int8_matrix) > bit_sparsity_twos_complement(
            int8_matrix
        )

    def test_sign_magnitude_handles_minimum_code(self):
        # -128 is clipped rather than raising.
        assert 0.0 <= bit_sparsity_sign_magnitude(np.array([-128, 0, 1])) <= 1.0


class TestBbsSparsity:
    def test_at_least_half_for_any_tensor(self, int8_matrix):
        assert bbs_sparsity(int8_matrix) >= 0.5

    def test_all_ones_tensor_is_fully_sparse_bidirectionally(self):
        assert bbs_sparsity(np.full(64, -1)) == 1.0

    def test_zero_tensor(self):
        assert bbs_sparsity(np.zeros(64, dtype=np.int64)) == 1.0

    def test_higher_than_twos_complement(self, int8_matrix):
        assert bbs_sparsity(int8_matrix) >= bit_sparsity_twos_complement(int8_matrix)

    @given(st.lists(st.integers(-128, 127), min_size=1, max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_bbs_sparsity_at_least_half_property(self, values):
        # The central BBS theorem: any bit vector exhibits >= 50 % sparsity.
        assert bbs_sparsity(np.array(values)) >= 0.5

    @given(
        st.lists(st.integers(-128, 127), min_size=1, max_size=100),
        st.sampled_from([4, 8, 16]),
    )
    @settings(max_examples=60, deadline=None)
    def test_effectual_bits_at_most_half_property(self, values, vector_size):
        effectual = bbs_effectual_bits_per_vector(
            np.array(values), vector_size=vector_size
        )
        assert np.all(effectual <= vector_size // 2)

    def test_effectual_bits_leq_plain_ones(self, int8_matrix):
        ones = effectual_bits_per_vector(int8_matrix)
        bbs = bbs_effectual_bits_per_vector(int8_matrix)
        assert np.all(bbs <= ones)

    def test_effectual_bits_sign_magnitude_mode(self, int8_matrix):
        sm = effectual_bits_per_vector(int8_matrix, representation="sign_magnitude")
        tc = effectual_bits_per_vector(int8_matrix, representation="twos_complement")
        assert sm.sum() < tc.sum()

    def test_effectual_bits_unknown_mode(self, int8_matrix):
        with pytest.raises(ValueError):
            effectual_bits_per_vector(int8_matrix, representation="gray")


class TestSparsityReport:
    def test_report_fields_ordering(self, int8_matrix):
        report = sparsity_report(int8_matrix)
        # The qualitative shape of Figure 3.
        assert report.value < 0.1
        assert 0.4 < report.bit_twos_complement < 0.6
        assert report.bit_sign_magnitude > report.bit_twos_complement
        assert report.bbs >= 0.5

    def test_as_dict(self, int8_matrix):
        report = sparsity_report(int8_matrix)
        assert set(report.as_dict()) == {
            "value",
            "bit_twos_complement",
            "bit_sign_magnitude",
            "bbs",
        }
