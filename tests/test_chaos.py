"""Tests for repro.chaos: fault plans, injection points, and the chaos proxy.

The proxy tests drive real sockets against a tiny in-process upstream; the
dispatch test at the bottom is the load-bearing one — a two-node campaign
dispatched through fault-injecting proxies must still produce a report
byte-identical to a fault-free run.
"""

from __future__ import annotations

import http.client
import http.server
import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.chaos import (
    INJECTION_POINTS,
    ChaosProxy,
    ChaosSpecError,
    FaultPlan,
    clear_plan,
    get_plan,
    install_plan,
    maybe_fail,
)
from repro.obs.metrics import get_metrics


@pytest.fixture(autouse=True)
def no_leaked_plan(monkeypatch):
    """Every test starts and ends with no process-wide plan installed."""
    monkeypatch.delenv("REPRO_CHAOS", raising=False)
    clear_plan()
    yield
    clear_plan()


class TestFaultPlanSpec:
    def test_parses_full_spec(self):
        plan = FaultPlan.from_spec(
            {
                "seed": 7,
                "rules": [
                    {"point": "journal.append", "probability": 0.5,
                     "mode": "error", "exception": "OSError", "count": 3},
                    {"point": "worker.run", "mode": "latency", "latency_s": 0.01},
                ],
            }
        )
        assert plan.seed == 7
        assert [rule.mode for rule in plan.rules] == ["error", "latency"]

    def test_bare_rule_list_shorthand(self):
        plan = FaultPlan.from_spec([{"point": "client.*", "mode": "error"}])
        assert plan.rules[0].exception == "OSError"  # mode=error default

    @pytest.mark.parametrize(
        "spec",
        [
            "not json at all",
            {"rules": []},
            {"rules": [{"point": "x", "probability": 2.0, "mode": "error"}]},
            {"rules": [{"point": "x", "exception": "SystemExit"}]},
            {"rules": [{"point": "x"}]},  # neither latency nor exception
            {"rules": [{"point": "x", "mode": "error"}], "extra": 1},
            {"rules": [{"point": "x", "mode": "error", "typo": 1}]},
            {"rules": [{"point": "x", "mode": "error", "count": 0}]},
            {"seed": "nope", "rules": [{"point": "x", "mode": "error"}]},
        ],
    )
    def test_bad_specs_raise(self, spec):
        with pytest.raises(ChaosSpecError):
            if isinstance(spec, str):
                FaultPlan.from_text(spec)
            else:
                FaultPlan.from_spec(spec)

    def test_from_text_inline_and_file(self, tmp_path):
        spec = '{"rules": [{"point": "worker.run", "mode": "latency", "latency_s": 0.01}]}'
        assert FaultPlan.from_text(spec).rules[0].point == "worker.run"
        path = tmp_path / "plan.json"
        path.write_text(spec)
        assert FaultPlan.from_text(str(path)).rules[0].point == "worker.run"
        assert FaultPlan.from_text(f"@{path}").rules[0].point == "worker.run"

    def test_env_plan_is_loaded_lazily(self, monkeypatch):
        monkeypatch.setenv(
            "REPRO_CHAOS",
            '{"rules": [{"point": "never.matched", "mode": "error"}]}',
        )
        clear_plan()  # forget the resolved (empty) plan so the env is re-read
        plan = get_plan()
        assert plan is not None and plan.rules[0].point == "never.matched"

    def test_injection_points_documented(self):
        # Every point wired into the stack must be discoverable by name.
        assert {
            "journal.append", "worker.run", "client.request",
            "server.request", "cache.disk_write",
        } <= set(INJECTION_POINTS)


class TestMaybeFail:
    def test_no_plan_is_a_no_op(self):
        maybe_fail("worker.run")  # must not raise

    def test_certain_rule_raises_chosen_exception(self):
        install_plan(FaultPlan.from_spec(
            [{"point": "worker.run", "exception": "ConnectionResetError"}]
        ))
        with pytest.raises(ConnectionResetError, match="chaos"):
            maybe_fail("worker.run")
        maybe_fail("journal.append")  # other points untouched

    def test_pattern_rules_match_by_fnmatch(self):
        install_plan(FaultPlan.from_spec([{"point": "client.*", "mode": "error"}]))
        with pytest.raises(OSError):
            maybe_fail("client.request")
        maybe_fail("server.request")

    def test_skip_and_count_gate_firing(self):
        install_plan(FaultPlan.from_spec(
            [{"point": "p", "mode": "error", "skip": 2, "count": 1}]
        ))
        maybe_fail("p")  # skipped
        maybe_fail("p")  # skipped
        with pytest.raises(OSError):
            maybe_fail("p")  # fires (the single allowed count)
        maybe_fail("p")  # exhausted

    def test_probability_is_deterministic_under_a_seed(self):
        def firing_pattern():
            install_plan(FaultPlan.from_spec(
                {"seed": 42,
                 "rules": [{"point": "p", "probability": 0.5, "mode": "error"}]}
            ))
            pattern = []
            for _ in range(32):
                try:
                    maybe_fail("p")
                    pattern.append(False)
                except OSError:
                    pattern.append(True)
            return pattern

        first, second = firing_pattern(), firing_pattern()
        assert first == second
        assert any(first) and not all(first)

    def test_latency_rule_sleeps(self):
        install_plan(FaultPlan.from_spec(
            [{"point": "p", "mode": "latency", "latency_s": 0.05}]
        ))
        start = time.perf_counter()
        maybe_fail("p")
        assert time.perf_counter() - start >= 0.04

    def test_injections_are_counted(self):
        counter = get_metrics().counter(
            "repro_chaos_injections_total", "", ("point", "mode")
        )
        before = counter.value(point="p", mode="error")
        install_plan(FaultPlan.from_spec([{"point": "p", "mode": "error"}]))
        with pytest.raises(OSError):
            maybe_fail("p")
        assert counter.value(point="p", mode="error") == before + 1
        assert get_plan().stats()["fired"] == 1


# --------------------------------------------------------------------------- #
# ChaosProxy
# --------------------------------------------------------------------------- #


class _UpstreamHandler(http.server.BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"

    def do_GET(self):  # noqa: N802 - http.server API
        body = json.dumps({"ok": True, "path": self.path}).encode()
        self.send_response(200)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format, *args):  # noqa: A002 - http.server API
        pass


@pytest.fixture()
def upstream():
    server = http.server.ThreadingHTTPServer(("127.0.0.1", 0), _UpstreamHandler)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server.server_address[1]
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)


def _get(url, timeout=10):
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return response.status, json.loads(response.read())


class TestChaosProxy:
    def test_faultless_proxy_forwards_requests(self, upstream):
        with ChaosProxy(upstream_port=upstream) as proxy:
            status, body = _get(f"{proxy.url}/health")
            assert status == 200 and body == {"ok": True, "path": "/health"}
            assert proxy.stats()["counts"] == {"forwarded": 1}

    def test_forced_reset_breaks_the_connection(self, upstream):
        with ChaosProxy(upstream_port=upstream, reset_p=1.0, seed=1) as proxy:
            with pytest.raises((urllib.error.URLError, ConnectionError, OSError)):
                _get(f"{proxy.url}/health")
            assert proxy.stats()["counts"]["reset"] >= 1

    def test_forced_429_carries_retry_after(self, upstream):
        with ChaosProxy(upstream_port=upstream, error_p=1.0, error_status=429,
                        retry_after=2.0) as proxy:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(f"{proxy.url}/health")
            error = excinfo.value
            assert error.code == 429
            assert error.headers["Retry-After"] == "2"
            assert json.loads(error.read())["retry_after"] == 2.0
            assert proxy.stats()["counts"]["error"] >= 1

    def test_truncated_response_fails_the_read(self, upstream):
        with ChaosProxy(upstream_port=upstream, truncate_p=1.0, seed=3) as proxy:
            with pytest.raises(
                (http.client.HTTPException, urllib.error.URLError,
                 ConnectionError, OSError, json.JSONDecodeError)
            ):
                _get(f"{proxy.url}/health")
            assert proxy.stats()["counts"]["truncate"] >= 1

    def test_added_latency_delays_the_response(self, upstream):
        with ChaosProxy(upstream_port=upstream, latency_p=1.0,
                        latency_s=0.1) as proxy:
            start = time.perf_counter()
            status, _ = _get(f"{proxy.url}/health")
            assert status == 200
            assert time.perf_counter() - start >= 0.08
            assert proxy.stats()["counts"]["latency"] >= 1

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValueError, match="reset_p"):
            ChaosProxy(upstream_port=80, reset_p=1.5)


# --------------------------------------------------------------------------- #
# End to end: faults stay invisible in the final artifacts
# --------------------------------------------------------------------------- #


SPEC = {
    "name": "chaos-dispatch",
    "grids": [
        {
            "name": "quant",
            "scenario": "quantize_tensor",
            "params": {"rows": 16, "cols": 64, "backend": "ptq"},
            "sweep": {"bits": [4, 8]},
        },
    ],
}


class TestChaosDispatchEndToEnd:
    def test_report_identical_through_faulty_proxies(self, tmp_path):
        from repro.campaign import parse_spec
        from repro.campaign.dispatch import CampaignDispatcher
        from repro.service import create_server
        from repro.service.client import ServiceClient

        servers, proxies, threads = [], [], []
        for index in range(2):
            server = create_server(port=0, max_workers=2)
            thread = threading.Thread(target=server.serve_forever, daemon=True)
            thread.start()
            proxy = ChaosProxy(
                upstream_port=server.port,
                reset_p=0.15,
                latency_p=0.3,
                latency_s=0.01,
                error_p=0.15,
                error_status=429,
                retry_after=0.02,
                seed=100 + index,
            ).start()
            servers.append(server)
            proxies.append(proxy)
            threads.append(thread)

        def resilient_client(url, **kwargs):
            kwargs.setdefault("retries", 8)
            kwargs.setdefault("backoff", 0.01)
            kwargs.setdefault("timeout", 30.0)
            return ServiceClient(url, **kwargs)

        try:
            clean = CampaignDispatcher(
                parse_spec(SPEC),
                [f"http://127.0.0.1:{server.port}" for server in servers],
                tmp_path / "clean",
                poll_interval=0.02,
                client_factory=resilient_client,
            )
            assert clean.run()["report_written"]

            chaotic = CampaignDispatcher(
                parse_spec(SPEC),
                [proxy.url for proxy in proxies],
                tmp_path / "chaotic",
                poll_interval=0.02,
                client_factory=resilient_client,
            )
            stats = chaotic.run()
        finally:
            for proxy in proxies:
                proxy.stop()
            for server, thread in zip(servers, threads, strict=False):
                server.close()
                thread.join(timeout=10)

        assert stats["report_written"] and stats["failed"] == 0
        injected = sum(
            sum(proxy.stats()["counts"].values()) for proxy in proxies
        )
        assert injected > 0, "the proxies never injected anything"
        assert (tmp_path / "chaotic/report.json").read_bytes() == (
            tmp_path / "clean/report.json"
        ).read_bytes()
        assert (tmp_path / "chaotic/report.csv").read_bytes() == (
            tmp_path / "clean/report.csv"
        ).read_bytes()


class TestChaosCli:
    def test_points_and_plan_validation(self, capsys):
        from repro.cli import main

        assert main(["chaos", "points"]) == 0
        out = capsys.readouterr().out
        assert "journal.append" in out and "worker.run" in out

        spec = '{"rules": [{"point": "worker.run", "mode": "error"}]}'
        assert main(["chaos", "plan", spec, "--json"]) == 0
        parsed = json.loads(capsys.readouterr().out)
        assert parsed["rules"][0]["point"] == "worker.run"

        assert main(["chaos", "plan", "{broken"]) == 1
        assert "invalid chaos plan" in capsys.readouterr().err
