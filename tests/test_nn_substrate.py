"""Tests for layers, the model zoo, synthetic weights, workloads and the trainer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.sparsity import sparsity_report
from repro.nn.layers import (
    Conv2d,
    Flatten,
    GELU,
    LayerNorm,
    Linear,
    MaxPool2d,
    ReLU,
    Sequential,
)
from repro.nn.model_zoo import (
    MODEL_BUILDERS,
    benchmark_models,
    bert_base,
    get_model,
    llama3_8b,
    resnet34,
    resnet50,
    vgg16,
    vit_base,
    vit_small,
)
from repro.nn.synthetic import (
    synthesize_activations,
    synthesize_layer,
    synthesize_model,
)
from repro.nn.trainer import (
    MLPClassifier,
    accuracy_under_compression,
    make_classification_dataset,
)
from repro.nn.workloads import layer_workload, model_workloads


class TestLayers:
    def test_linear_forward_and_weight_roundtrip(self, fresh_rng):
        layer = Linear(8, 4, rng=fresh_rng)
        inputs = fresh_rng.normal(size=(3, 8))
        out = layer(inputs)
        assert out.shape == (3, 4)
        matrix = layer.weight_matrix()
        layer.set_weight_matrix(matrix * 2)
        assert np.allclose(layer(inputs), 2 * out)

    def test_conv_weight_matrix_layout(self, fresh_rng):
        layer = Conv2d(3, 8, 3, padding=1, rng=fresh_rng)
        matrix = layer.weight_matrix()
        assert matrix.shape == (8, 27)
        layer.set_weight_matrix(np.zeros_like(matrix))
        out = layer(fresh_rng.normal(size=(1, 3, 6, 6)))
        assert np.allclose(out, 0.0)

    def test_set_weight_matrix_shape_check(self, fresh_rng):
        layer = Linear(8, 4, rng=fresh_rng)
        with pytest.raises(ValueError):
            layer.set_weight_matrix(np.zeros((3, 3)))

    def test_activation_layers_have_no_weights(self):
        for layer in (ReLU(), GELU(), Flatten(), MaxPool2d(2)):
            assert layer.weight_matrix() is None
            with pytest.raises(NotImplementedError):
                layer.set_weight_matrix(np.zeros((1, 1)))

    def test_sequential_pipeline(self, fresh_rng):
        network = Sequential(
            Conv2d(1, 4, 3, padding=1, rng=fresh_rng),
            ReLU(),
            MaxPool2d(2),
            Flatten(),
            Linear(4 * 4 * 4, 10, rng=fresh_rng),
        )
        out = network(fresh_rng.normal(size=(2, 1, 8, 8)))
        assert out.shape == (2, 10)
        assert len(network.weight_layers()) == 2

    def test_layernorm_layer(self, fresh_rng):
        layer = LayerNorm(16)
        out = layer(fresh_rng.normal(size=(4, 16)))
        assert np.allclose(out.mean(axis=-1), 0.0, atol=1e-6)


class TestModelZoo:
    def test_all_builders_construct(self):
        for name in MODEL_BUILDERS:
            model = get_model(name)
            assert model.total_weights > 0
            assert model.total_macs > 0

    def test_unknown_model(self):
        with pytest.raises(KeyError):
            get_model("AlexNet")

    def test_benchmark_list_matches_table1(self):
        names = [model.name for model in benchmark_models()]
        assert names == [
            "VGG-16",
            "ResNet-34",
            "ResNet-50",
            "ViT-Small",
            "ViT-Base",
            "BERT-MRPC",
            "BERT-SST2",
        ]

    def test_published_parameter_counts(self):
        # Within a few percent of the well-known parameter counts.
        assert vgg16().total_weights == pytest.approx(138e6, rel=0.02)
        assert resnet50().total_weights == pytest.approx(25.5e6, rel=0.03)
        assert resnet34().total_weights == pytest.approx(21.8e6, rel=0.03)
        assert vit_base().total_weights == pytest.approx(86e6, rel=0.03)
        assert vit_small().total_weights == pytest.approx(22e6, rel=0.03)
        assert bert_base().total_weights == pytest.approx(85e6, rel=0.03)
        assert llama3_8b().total_weights == pytest.approx(7.5e9, rel=0.05)

    def test_published_mac_counts(self):
        assert vgg16().total_macs == pytest.approx(15.5e9, rel=0.05)
        assert resnet50().total_macs == pytest.approx(4.1e9, rel=0.05)
        assert resnet34().total_macs == pytest.approx(3.6e9, rel=0.05)

    def test_resnet50_layer_shapes(self):
        model = resnet50()
        by_name = {layer.name: layer for layer in model.layers}
        assert by_name["conv1"].gemm_k == 3 * 7 * 7
        assert by_name["layer4.conv3"].gemm_n == 2048
        assert by_name["fc"].gemm_k == 2048

    def test_bert_task_accuracies(self):
        assert bert_base("MRPC").fp32_accuracy == 90.7
        assert bert_base("SST2").int8_accuracy == 91.63
        with pytest.raises(ValueError):
            bert_base("QQP")

    def test_transformer_models_have_no_relu_sparsity(self):
        assert vit_base().activation_value_sparsity < 0.1
        assert vgg16().activation_value_sparsity > 0.3


class TestWorkloads:
    def test_conv_workload_dimensions(self):
        model = resnet50()
        conv1 = layer_workload(model.layers[0])
        assert conv1.m == 112 * 112
        assert conv1.k == 147
        assert conv1.n == 64
        assert conv1.macs == 112 * 112 * 147 * 64

    def test_linear_workload_dimensions(self):
        fc = layer_workload(vit_base().layers[1])
        assert fc.m == 197
        assert fc.k == 768
        assert fc.n == 3 * 768

    def test_model_workload_macs_match_spec(self):
        model = resnet34()
        workloads = model_workloads(model)
        assert sum(w.total_macs for w in workloads) == model.total_macs

    def test_byte_accounting(self):
        workload = layer_workload(vit_small().layers[1])
        assert workload.weight_bytes == workload.k * workload.n
        assert workload.activation_bytes == workload.m * workload.k


class TestSyntheticWeights:
    def test_layer_synthesis_shapes_and_range(self, fresh_rng):
        spec = resnet50().layers[5]
        layer = synthesize_layer(spec, fresh_rng)
        assert layer.int_weights.shape[0] <= spec.gemm_n
        assert layer.int_weights.min() >= -128
        assert layer.int_weights.max() <= 127

    def test_statistics_match_figure3(self, small_resnet_weights):
        # Aggregate sparsity of the synthetic INT8 weights reproduces the
        # Figure 3 pattern: tiny value sparsity, ~50 % two's-complement bit
        # sparsity, higher sign-magnitude sparsity, BBS >= 50 %.
        layer = small_resnet_weights["layer3.conv2"]
        report = sparsity_report(layer.int_weights)
        assert report.value < 0.10
        assert 0.45 < report.bit_twos_complement < 0.58
        assert report.bit_sign_magnitude > 0.55
        assert report.bbs >= 0.55

    def test_determinism(self):
        model = get_model("ViT-Small")
        a = synthesize_model(model, seed=3, max_channels=32, max_reduction=128)
        b = synthesize_model(model, seed=3, max_channels=32, max_reduction=128)
        for name in a:
            assert np.array_equal(a[name].int_weights, b[name].int_weights)

    def test_different_seeds_differ(self):
        model = get_model("ViT-Small")
        a = synthesize_model(model, seed=1, max_channels=32, max_reduction=128)
        b = synthesize_model(model, seed=2, max_channels=32, max_reduction=128)
        assert not np.array_equal(a["attn.qkv"].int_weights, b["attn.qkv"].int_weights)

    def test_sample_fraction_recorded(self):
        weights = synthesize_model(llama3_8b(), seed=0, max_channels=64, max_reduction=512)
        head = weights["lm_head"]
        assert head.sample_fraction < 0.01
        assert head.full_weight_count == 4096 * 128256

    def test_channel_scores_reflect_outliers(self, small_resnet_weights):
        layer = small_resnet_weights["layer2.conv2"]
        scores = layer.channel_scores
        assert scores.max() / np.median(scores) > 1.5

    def test_activation_generators(self, fresh_rng):
        spec = resnet50().layers[5]
        cnn_acts = synthesize_activations(spec, fresh_rng, family="cnn")
        assert cnn_acts.min() >= 0
        assert (cnn_acts == 0).mean() > 0.3
        transformer_acts = synthesize_activations(spec, fresh_rng, family="transformer")
        assert transformer_acts.min() < 0
        assert (transformer_acts == 0).mean() < 0.3


class TestTrainer:
    @pytest.fixture(scope="class")
    def trained(self):
        dataset = make_classification_dataset(num_samples=1500, num_features=32,
                                              num_classes=6, seed=0)
        model = MLPClassifier(dataset.num_features, dataset.num_classes, (64, 48), seed=0)
        accuracy = model.train(dataset, epochs=12, seed=0)
        return dataset, model, accuracy

    def test_training_reaches_high_accuracy(self, trained):
        _, _, accuracy = trained
        assert accuracy > 85.0

    def test_int8_quantization_is_nearly_lossless(self, trained):
        dataset, model, accuracy = trained
        int8 = accuracy_under_compression(model, dataset, lambda n, w, s: w)
        assert abs(int8 - accuracy) < 2.0

    def test_heavy_truncation_hurts_more_than_bbs(self, trained):
        from repro.core.binary_pruning import prune_tensor
        from repro.core.encoding import PruningStrategy

        dataset, model, _ = trained

        def crush(name, values, scales):
            return (values // 64) * 64  # keep only 2 effective bits

        def bbs(name, values, scales):
            return prune_tensor(values, 4, PruningStrategy.ZERO_POINT_SHIFT,
                                keep_original=False).values

        crushed = accuracy_under_compression(model, dataset, crush)
        pruned = accuracy_under_compression(model, dataset, bbs)
        assert pruned >= crushed

    def test_weight_matrix_roundtrip(self, trained):
        _, model, _ = trained
        matrices = model.weight_matrices()
        clone = model.with_weight_matrices(matrices)
        assert np.allclose(clone.weights[0], model.weights[0])

    def test_with_weight_matrices_rejects_bad_shape(self, trained):
        _, model, _ = trained
        with pytest.raises(ValueError):
            model.with_weight_matrices({"fc0": np.zeros((1, 1))})

    def test_dataset_properties(self):
        dataset = make_classification_dataset(num_samples=400, num_features=16,
                                              num_classes=4, seed=1)
        assert dataset.num_features == 16
        assert dataset.num_classes == 4
        assert len(dataset.train_x) + len(dataset.test_x) <= 400
        assert set(np.unique(dataset.train_y)) <= set(range(4))
