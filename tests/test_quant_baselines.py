"""Tests for the compression baselines: BitWave bit-flip, MX, NoisyQuant, ANT, Olive."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.metrics import kl_divergence
from repro.core.binary_pruning import prune_tensor
from repro.core.encoding import PruningStrategy
from repro.quant.ant_datatype import ant_quantize, datatype_codebook
from repro.quant.bitflip import bitflip_group, bitflip_tensor
from repro.quant.microscaling import microscaling_quantize
from repro.quant.noisyquant import noisyquant_quantize
from repro.quant.olive import olive_quantize


class TestBitFlip:
    def test_zero_columns_is_identity(self, int8_matrix):
        result = bitflip_tensor(int8_matrix, 0)
        assert np.array_equal(result.values, int8_matrix)

    def test_group_level_inherent_vs_forced(self):
        # A group of small values has inherent zero columns: pruning them is free.
        group = np.array([1, -2, 3, -4, 5, -6, 7, 0])
        values, inherent, forced = bitflip_group(group, 3)
        assert inherent == 3
        assert forced == 0
        assert np.array_equal(values, group)

    def test_forced_columns_truncate_magnitudes(self):
        group = np.array([127, -127, 100, -100])
        values, inherent, forced = bitflip_group(group, 2)
        assert inherent == 0
        assert forced == 2
        assert np.all(np.abs(values) <= np.abs(group))
        assert np.all(np.abs(values) % 4 == 0)

    def test_only_zero_direction_loses_levels(self, int8_matrix):
        # The zero-column-only restriction removes quantization levels, which
        # is the weakness Figure 1(b)/Figure 6 highlight relative to BBS.
        bitwave = bitflip_tensor(int8_matrix, 4, keep_original=False).values
        bbs = prune_tensor(
            int8_matrix, 4, PruningStrategy.ZERO_POINT_SHIFT, keep_original=False
        ).values
        assert len(np.unique(bitwave)) < len(np.unique(bbs))
        assert kl_divergence(int8_matrix, bitwave) > kl_divergence(int8_matrix, bbs)

    def test_sensitive_channels_untouched(self, int8_matrix):
        sensitive = np.zeros(int8_matrix.shape[0], dtype=bool)
        sensitive[:8] = True
        result = bitflip_tensor(int8_matrix, 3, sensitive_channels=sensitive)
        assert np.array_equal(result.values[:8], int8_matrix[:8])

    def test_effective_bits(self, int8_matrix):
        result = bitflip_tensor(int8_matrix, 3)
        assert result.effective_bits() == pytest.approx((5 * 32 + 8) / 32)

    def test_handles_minimum_code(self):
        group = np.full(8, -128)
        values, _, _ = bitflip_group(group, 2)
        assert values.min() >= -128

    def test_rejects_bad_column_count(self):
        with pytest.raises(ValueError):
            bitflip_group(np.zeros(8, dtype=np.int64), 8)

    def test_rejects_float(self):
        with pytest.raises(TypeError):
            bitflip_tensor(np.zeros((2, 32)), 2)

    @given(st.lists(st.integers(-127, 127), min_size=4, max_size=32), st.integers(0, 6))
    @settings(max_examples=60, deadline=None)
    def test_magnitude_never_increases_property(self, values, columns):
        group = np.array(values)
        pruned, _, _ = bitflip_group(group, columns)
        assert np.all(np.abs(pruned) <= np.abs(group))
        assert np.all(np.sign(pruned) * np.sign(group) >= 0)


class TestMicroscaling:
    def test_effective_bits(self, int8_matrix):
        result = microscaling_quantize(int8_matrix, 6, 32)
        assert result.effective_bits() == pytest.approx(6.25)

    def test_preserves_integer_domain(self, int8_matrix):
        result = microscaling_quantize(int8_matrix, 6, 32)
        assert np.issubdtype(result.values.dtype, np.integer)
        assert result.values.min() >= -128 and result.values.max() <= 127

    def test_outlier_crushes_small_values(self):
        # The documented MX weakness: one large value per block forces small
        # values to zero.
        block = np.zeros((1, 32), dtype=np.int64)
        block[0, 0] = 127
        block[0, 1:] = 1
        result = microscaling_quantize(block, element_bits=4, block_size=32)
        assert result.values[0, 0] != 0
        assert np.count_nonzero(result.values[0, 1:]) == 0

    def test_error_decreases_with_element_bits(self, int8_matrix):
        errors = [
            microscaling_quantize(int8_matrix, bits, 32).mse() for bits in (4, 6, 8)
        ]
        assert errors[0] >= errors[1] >= errors[2]

    def test_zero_block(self):
        result = microscaling_quantize(np.zeros((2, 32), dtype=np.int64), 6, 32)
        assert np.all(result.values == 0)

    def test_rejects_bad_args(self, int8_matrix):
        with pytest.raises(ValueError):
            microscaling_quantize(int8_matrix, 1, 32)
        with pytest.raises(ValueError):
            microscaling_quantize(int8_matrix, 6, 0)
        with pytest.raises(ValueError):
            microscaling_quantize(np.zeros(8), 6, 4)


class TestNoisyQuant:
    def test_better_or_equal_than_plain_quantization(self, int8_matrix):
        result = noisyquant_quantize(int8_matrix, 6)
        plain = noisyquant_quantize(int8_matrix, 6, amplitude_candidates=(0.0,))
        assert result.mse() <= plain.mse() + 1e-9

    def test_deterministic_given_seed(self, int8_matrix):
        a = noisyquant_quantize(int8_matrix, 6, seed=3)
        b = noisyquant_quantize(int8_matrix, 6, seed=3)
        assert np.array_equal(a.values, b.values)

    def test_effective_bits(self, int8_matrix):
        assert noisyquant_quantize(int8_matrix, 6).effective_bits() == 6.0

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            noisyquant_quantize(np.zeros(8))


class TestAnt:
    def test_codebook_sizes(self):
        for datatype in ("int", "pot", "flint"):
            codebook = datatype_codebook(datatype, 6)
            assert len(codebook) <= 64
            assert np.all(np.diff(codebook) > 0)
            assert codebook.max() == 1.0 and codebook.min() == -1.0

    def test_unknown_datatype(self):
        with pytest.raises(ValueError):
            datatype_codebook("posit", 6)

    def test_pot_is_powers_of_two(self):
        codebook = datatype_codebook("pot", 4)
        positive = codebook[codebook > 0]
        assert np.allclose(np.log2(positive), np.round(np.log2(positive)))

    def test_quantize_reduces_levels(self, int8_matrix):
        result = ant_quantize(int8_matrix, 6)
        assert result.mse() > 0
        assert len(result.chosen_datatypes) == int8_matrix.shape[0]

    def test_adaptive_choice_not_worse_than_int_only(self, int8_matrix):
        adaptive = ant_quantize(int8_matrix, 6)
        int_only = ant_quantize(int8_matrix, 6, datatypes=("int",))
        assert adaptive.mse() <= int_only.mse() + 1e-9

    def test_rejects_tiny_bits(self, int8_matrix):
        with pytest.raises(ValueError):
            ant_quantize(int8_matrix, 2)


class TestOlive:
    def test_outliers_preserved_victims_zeroed(self):
        channel = np.ones((1, 32), dtype=np.int64) * 3
        channel[0, 10] = 120  # a clear outlier
        result = olive_quantize(channel, 4, outlier_percentile=90.0)
        assert abs(result.values[0, 10]) > 20          # outlier keeps large magnitude
        assert result.values[0, 11] == 0               # its victim is sacrificed

    def test_effective_bits(self, int8_matrix):
        assert olive_quantize(int8_matrix, 4).effective_bits() == 4.0

    def test_outlier_fraction_reported(self, int8_matrix):
        result = olive_quantize(int8_matrix, 4)
        assert 0.0 <= result.outlier_fraction <= 0.2

    def test_worse_than_bbs_moderate_on_gaussian_weights(self, int8_matrix):
        # The Figure 17 ordering: BBS moderate (4.25 bits) beats Olive (4 bits).
        olive = olive_quantize(int8_matrix, 4, keep_original=True)
        bbs = prune_tensor(int8_matrix, 4, PruningStrategy.ZERO_POINT_SHIFT)
        assert bbs.mse() < olive.mse()

    def test_rejects_bad_percentile(self, int8_matrix):
        with pytest.raises(ValueError):
            olive_quantize(int8_matrix, 4, outlier_percentile=10.0)

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            olive_quantize(np.zeros(8))
