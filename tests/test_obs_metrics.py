"""Tests for repro.obs metrics: registry semantics, exposition, live scrapes.

The process-wide registry is shared by every test in the process, so the
assertions here never depend on absolute global counts — each test reads its
own families or deltas.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    MetricError,
    MetricsRegistry,
    declare_standard_families,
    get_metrics,
)
from repro.obs.timing import timed
from repro.service import create_server
from repro.service.client import ServiceClient

PRUNE_PARAMS = {"rows": 16, "cols": 64, "num_columns": 2}


# --------------------------------------------------------------------------- #
# Registry semantics
# --------------------------------------------------------------------------- #


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits_total", "test counter")
        assert counter.value() == 0
        counter.inc()
        counter.inc(2.5)
        assert counter.value() == pytest.approx(3.5)

    def test_labelled_series_are_independent(self):
        registry = MetricsRegistry()
        counter = registry.counter("ops_total", "", ("kind",))
        counter.inc(kind="read")
        counter.inc(kind="read")
        counter.inc(kind="write")
        assert counter.value(kind="read") == 2
        assert counter.value(kind="write") == 1
        assert counter.value(kind="never") == 0

    def test_cannot_decrease(self):
        counter = MetricsRegistry().counter("c_total")
        with pytest.raises(MetricError):
            counter.inc(-1)

    def test_wrong_labels_rejected(self):
        counter = MetricsRegistry().counter("c_total", "", ("kind",))
        with pytest.raises(MetricError):
            counter.inc()
        with pytest.raises(MetricError):
            counter.inc(kind="x", extra="y")


class TestGauge:
    def test_inc_dec_set(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.inc()
        gauge.inc()
        gauge.dec()
        assert gauge.value() == 1
        gauge.set(7)
        assert gauge.value() == 7
        gauge.dec(10)
        assert gauge.value() == -3


class TestHistogram:
    def test_observe_updates_buckets_sum_count(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat_seconds", buckets=(0.1, 1.0, 10.0))
        histogram.observe(0.05)
        histogram.observe(0.5)
        histogram.observe(100.0)  # beyond every bound: only +Inf
        assert histogram.count() == 3
        assert histogram.sum() == pytest.approx(100.55)
        samples = dict(
            ((name, labels.get("le")), value)
            for name, labels, value in histogram.samples()
        )
        assert samples[("lat_seconds_bucket", "0.1")] == 1
        assert samples[("lat_seconds_bucket", "1")] == 2
        assert samples[("lat_seconds_bucket", "10")] == 2
        assert samples[("lat_seconds_bucket", "+Inf")] == 3
        assert samples[("lat_seconds_count", None)] == 3

    def test_buckets_are_sorted_and_default(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h", buckets=(5.0, 1.0, 2.0))
        assert histogram.buckets == (1.0, 2.0, 5.0)
        assert registry.histogram("h2").buckets == DEFAULT_BUCKETS

    def test_needs_at_least_one_bucket(self):
        with pytest.raises(MetricError):
            MetricsRegistry().histogram("h", buckets=())


class TestRegistry:
    def test_get_or_create_returns_same_family(self):
        registry = MetricsRegistry()
        first = registry.counter("x_total", "", ("a",))
        assert registry.counter("x_total", "", ("a",)) is first

    def test_type_clash_raises(self):
        registry = MetricsRegistry()
        registry.counter("x_total")
        with pytest.raises(MetricError):
            registry.gauge("x_total")
        with pytest.raises(MetricError):
            registry.histogram("x_total")

    def test_label_clash_raises(self):
        registry = MetricsRegistry()
        registry.counter("x_total", "", ("a",))
        with pytest.raises(MetricError):
            registry.counter("x_total", "", ("b",))

    def test_invalid_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(MetricError):
            registry.counter("bad name")
        with pytest.raises(MetricError):
            registry.counter("ok_total", "", ("0bad",))
        with pytest.raises(MetricError):
            registry.histogram("ok_seconds", "", ("le",))  # reserved

    def test_reset_zeroes_but_keeps_declarations(self):
        registry = MetricsRegistry()
        counter = registry.counter("x_total")
        labelled = registry.counter("y_total", "", ("k",))
        counter.inc(5)
        labelled.inc(k="a")
        registry.reset()
        assert counter.value() == 0
        assert labelled.value(k="a") == 0
        assert "x_total" in registry.names()
        # The label-less zero sample survives the reset.
        assert ("x_total", {}, 0.0) in counter.samples()


class TestExposition:
    def test_prometheus_text_shape(self):
        registry = MetricsRegistry()
        counter = registry.counter("req_total", "Requests served.", ("route",))
        counter.inc(route='api "v1"\n')
        text = registry.render_prometheus()
        assert "# HELP req_total Requests served." in text
        assert "# TYPE req_total counter" in text
        # Label values escape quotes and newlines; integers render bare.
        assert r'req_total{route="api \"v1\"\n"} 1' in text
        assert text.endswith("\n")

    def test_standard_families_scrapeable_before_traffic(self):
        registry = MetricsRegistry()
        declare_standard_families(registry)
        text = registry.render_prometheus()
        for family in (
            "repro_http_requests_total",
            "repro_job_queue_depth",
            "repro_cache_hits_total",
            "repro_codec_compress_seconds",
        ):
            assert f"# TYPE {family} " in text
        # Label-less families expose a numeric zero sample immediately.
        assert "repro_job_queue_depth 0" in text
        assert "repro_cache_hits_total 0" in text

    def test_json_exposition(self):
        registry = MetricsRegistry()
        registry.counter("x_total", "help", ("k",)).inc(k="v")
        registry.histogram("h_seconds", buckets=(1.0,)).observe(0.5)
        payload = registry.to_jsonable()
        assert payload["families"]["x_total"]["type"] == "counter"
        assert payload["families"]["x_total"]["series"] == [
            {"labels": {"k": "v"}, "value": 1.0}
        ]
        family = payload["families"]["h_seconds"]
        assert family["bucket_bounds"] == [1.0]
        assert family["series"][0]["count"] == 1
        json.dumps(payload)  # fully serializable


class TestTimed:
    def test_observes_operation_histogram(self):
        histogram = get_metrics().histogram(
            "repro_operation_seconds", labelnames=("operation",)
        )
        before = histogram.count(operation="test.op")
        with timed("test.op") as timer:
            pass
        assert histogram.count(operation="test.op") == before + 1
        assert timer.seconds >= 0

    def test_observes_even_on_raise(self):
        histogram = get_metrics().histogram(
            "repro_operation_seconds", labelnames=("operation",)
        )
        before = histogram.count(operation="test.raise")
        with pytest.raises(RuntimeError):
            with timed("test.raise"):
                raise RuntimeError("boom")
        assert histogram.count(operation="test.raise") == before + 1


# --------------------------------------------------------------------------- #
# GET /v1/metrics against a live server
# --------------------------------------------------------------------------- #


@pytest.fixture(scope="module")
def server():
    server = create_server(port=0, max_workers=2)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server
    server.close()
    thread.join(timeout=10)


@pytest.fixture(scope="module")
def base(server):
    return f"http://127.0.0.1:{server.port}"


class TestMetricsEndpoint:
    def test_prometheus_scrape(self, base):
        with urllib.request.urlopen(base + "/v1/metrics") as response:
            assert response.status == 200
            assert response.headers["Content-Type"].startswith("text/plain")
            assert "version=0.0.4" in response.headers["Content-Type"]
            text = response.read().decode("utf-8")
        for family in (
            "repro_http_requests_total",
            "repro_job_queue_depth",
            "repro_cache_hits_total",
            "repro_codec_compress_seconds",
        ):
            assert f"# TYPE {family} " in text

    def test_scrape_reflects_served_traffic(self, base):
        client = ServiceClient(base)
        record = client.submit(
            "codec_compress",
            {"codec": "prune", "rows": 16, "cols": 64, "seed": 11},
            wait=30.0,
        )
        assert record["state"] == "done"
        # The POST's counter increment lands after its response is written
        # (the handler's finally), so give the scrape a moment to see it.
        expected = 'method="POST",route="/v1/jobs",status="200"'
        deadline = time.time() + 5.0
        while True:
            text = client.metrics()
            assert isinstance(text, str)
            if expected in text or time.time() > deadline:
                break
            time.sleep(0.02)
        # The request counter saw the submit POST on its patterned route.
        assert expected in text
        # And the codec latency histogram saw the compression.
        assert 'repro_codec_compress_seconds_count{codec="prune"}' in text

    def test_json_format(self, base):
        payload = ServiceClient(base).metrics(format="json")
        families = payload["families"]
        assert families["repro_http_requests_total"]["type"] == "counter"
        assert families["repro_codec_compress_seconds"]["type"] == "histogram"

    def test_unknown_format_is_400(self, base):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(base + "/v1/metrics?format=yaml")
        assert excinfo.value.code == 400

    def test_legacy_unprefixed_path_is_gone(self, base):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(base + "/metrics")
        assert excinfo.value.code == 404


class TestMetricsSurviveRestart:
    def test_families_present_after_journal_replay(self, tmp_path):
        journal_dir = tmp_path / "journal"
        first = create_server(port=0, max_workers=2, journal_dir=journal_dir)
        thread = threading.Thread(target=first.serve_forever, daemon=True)
        thread.start()
        try:
            client = ServiceClient(f"http://127.0.0.1:{first.port}")
            record = client.submit("prune_tensor", PRUNE_PARAMS, wait=30.0)
            assert record["state"] == "done"
        finally:
            first.close()
            thread.join(timeout=10)

        jobs_total = get_metrics().counter(
            "repro_jobs_total", labelnames=("scenario", "event")
        )
        restored_before = jobs_total.value(scenario="prune_tensor", event="restored")

        second = create_server(port=0, max_workers=2, journal_dir=journal_dir)
        thread = threading.Thread(target=second.serve_forever, daemon=True)
        thread.start()
        try:
            assert second.replay_stats["replayed"] >= 1
            text = ServiceClient(f"http://127.0.0.1:{second.port}").metrics()
        finally:
            second.close()
            thread.join(timeout=10)

        # Every standard family is scrapeable on the fresh process/server, and
        # the replay itself is visible as restored-job events.
        for family in (
            "repro_http_requests_total",
            "repro_job_queue_depth",
            "repro_cache_hits_total",
            "repro_codec_compress_seconds",
            "repro_journal_appends_total",
        ):
            assert f"# TYPE {family} " in text
        restored_after = jobs_total.value(scenario="prune_tensor", event="restored")
        assert restored_after >= restored_before + 1
