"""End-to-end integration tests that tie the substrates together."""

from __future__ import annotations

import numpy as np
import pytest

from repro.accelerators import BitVertAccelerator, BitVertPE, StripesAccelerator
from repro.accelerators.bitvert.reorder import reorder_channels, unshuffle_output
from repro.core import (
    MODERATE_PRESET,
    PruningStrategy,
    encode_group,
    global_binary_prune,
    prune_group,
)
from repro.nn import Linear, ReLU, Sequential
from repro.nn.model_zoo import get_model
from repro.quant import quantize_per_channel


class TestCompressedInferencePipeline:
    """Quantize -> globally prune -> execute a small network; outputs stay close."""

    @pytest.fixture(scope="class")
    def network(self):
        rng = np.random.default_rng(21)
        return Sequential(
            Linear(64, 128, rng=rng),
            ReLU(),
            Linear(128, 96, rng=rng),
            ReLU(),
            Linear(96, 10, rng=rng),
        )

    def test_pruned_network_output_close_to_original(self, network):
        rng = np.random.default_rng(5)
        inputs = rng.normal(size=(16, 64))
        reference = network(inputs)

        layer_ints = {}
        scales = {}
        quantized = {}
        for index, layer in enumerate(network.weight_layers()):
            name = f"layer{index}"
            q = quantize_per_channel(layer.weight_matrix(), 8)
            quantized[name] = q
            layer_ints[name] = q.values
            scales[name] = q.scales

        result = global_binary_prune(layer_ints, scales, MODERATE_PRESET)
        for index, layer in enumerate(network.weight_layers()):
            name = f"layer{index}"
            pruned = result.pruned_layers[name]
            layer.set_weight_matrix(pruned.values.astype(float) * scales[name][:, None])

        compressed_output = network(inputs)
        correlation = np.corrcoef(reference.ravel(), compressed_output.ravel())[0, 1]
        assert correlation > 0.98
        assert result.compression_ratio() > 1.3

    def test_argmax_predictions_mostly_preserved(self, network):
        rng = np.random.default_rng(9)
        inputs = rng.normal(size=(64, 64))
        before = network(inputs).argmax(axis=1)
        after = network(inputs).argmax(axis=1)
        assert (before == after).mean() == 1.0  # network already compressed above is fine


class TestPEAgainstAcceleratorModel:
    """The functional PE and the cycle model agree on per-group latency."""

    def test_cycles_match_for_pruned_groups(self, fresh_rng):
        pe = BitVertPE()
        for columns in (2, 4, 6):
            weights = fresh_rng.integers(-128, 128, 16)
            activations = fresh_rng.integers(-128, 128, 16)
            pruned = prune_group(weights, columns, PruningStrategy.ZERO_POINT_SHIFT)
            result = pe.compute_group(encode_group(pruned), activations)
            assert result.cycles == max(2, 8 - columns)

    def test_compressed_gemm_with_reordering_is_exact(self, fresh_rng):
        # Full micro-pipeline: reorder channels, compute each output with the
        # functional PE from the compressed encoding, unshuffle, compare.
        channels, reduction = 6, 16
        weights = fresh_rng.integers(-64, 64, (channels, reduction))
        activations = fresh_rng.integers(-64, 64, reduction)
        sensitive = np.array([0, 1, 0, 0, 0, 1], dtype=bool)

        reordered, reordering = reorder_channels(weights, sensitive)
        pe = BitVertPE()
        outputs = []
        for channel_index in range(channels):
            original_channel = reordering.permutation[channel_index]
            if sensitive[original_channel]:
                result = pe.compute_uncompressed_group(reordered[channel_index], activations)
                outputs.append(result.dot_product)
            else:
                pruned = prune_group(
                    reordered[channel_index], 4, PruningStrategy.ZERO_POINT_SHIFT
                )
                result = pe.compute_group(encode_group(pruned), activations)
                expected = int(pruned.values @ activations)
                assert result.dot_product == expected
                outputs.append(result.dot_product)
        restored = unshuffle_output(np.array(outputs), reordering)

        for channel_index in range(channels):
            if sensitive[channel_index]:
                assert restored[channel_index] == int(weights[channel_index] @ activations)


class TestModelLevelConsistency:
    def test_compression_reduces_both_footprint_and_cycles(self, small_vit_weights):
        model = get_model("ViT-Small")
        stripes = StripesAccelerator().run_model(model, small_vit_weights)
        bitvert = BitVertAccelerator(preset=MODERATE_PRESET).run_model(model, small_vit_weights)

        stripes_weight_bytes = sum(
            layer.stored_weight_bytes * layer.repeat for layer in stripes.layers
        )
        bitvert_weight_bytes = sum(
            layer.stored_weight_bytes * layer.repeat for layer in bitvert.layers
        )
        # The 64-channel test sample inflates the sensitive fraction (CH
        # alignment keeps at least 32 channels per layer at 8 bits), so the
        # footprint reduction here is a lower bound on the full-model one.
        assert bitvert_weight_bytes < 0.85 * stripes_weight_bytes
        assert bitvert.total_cycles < stripes.total_cycles
        assert bitvert.total_energy_pj < stripes.total_energy_pj

    def test_model_compression_ratio_matches_paper_range(self, small_vit_weights):
        layer_ints = {name: lw.int_weights for name, lw in small_vit_weights.items()}
        scores = {name: lw.channel_scores for name, lw in small_vit_weights.items()}
        result = global_binary_prune(layer_ints, scores, MODERATE_PRESET)
        # Paper: moderate pruning compresses the models by ~1.66x on average.
        # The small 64-channel sample over-selects sensitive channels (CH
        # alignment), so the measured ratio sits a little below that.
        assert 1.25 < result.compression_ratio() < 2.0
