"""Tests for repro.analysis — the AST-based invariant checkers.

Each checker gets a fire/silent fixture pair: a minimal source file that
violates the invariant (the checker must produce exactly the expected
finding) and its repaired twin (the checker must stay silent).  On top of
that: suppression-comment semantics, the ``repro analyze`` exit-code
contract (0 clean / 1 findings / 2 usage error), and the meta-test the CI
gate relies on — the full engine over ``src/repro`` reports zero
unsuppressed findings.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis import (
    Finding,
    analyze_paths,
    checker_names,
    describe_checkers,
    format_json,
    format_table,
    get_checker,
    parse_suppressions,
)
from repro.cli import main as cli_main

REPO_ROOT = Path(__file__).resolve().parent.parent

EXPECTED_CHECKERS = {
    "digest-purity",
    "lock-guard",
    "lock-order",
    "metric-labels",
    "silent-except",
    "span-hygiene",
}


def write(directory: Path, name: str, source: str) -> Path:
    path = directory / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return path


def run_checker(tmp_path: Path, checker: str, source: str, name: str = "mod.py"):
    """Write one fixture module and run a single checker over it."""
    write(tmp_path, name, source)
    return analyze_paths([tmp_path], select=[checker])


# --------------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------------- #


class TestRegistry:
    def test_all_expected_checkers_registered(self):
        assert EXPECTED_CHECKERS <= set(checker_names())

    def test_describe_checkers_catalog(self):
        catalog = describe_checkers()
        names = [entry["name"] for entry in catalog]
        assert names == sorted(names)
        for entry in catalog:
            assert entry["description"]
            assert entry["severity"] == "error"

    def test_get_checker_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown checker"):
            get_checker("no-such-checker")

    def test_get_checker_returns_singleton(self):
        assert get_checker("lock-guard") is get_checker("lock-guard")


# --------------------------------------------------------------------------- #
# lock-guard
# --------------------------------------------------------------------------- #


LOCK_GUARD_BAD = """
    import threading

    class Store:
        def __init__(self):
            self._lock = threading.Lock()
            self._items = {}

        def put(self, key, value):
            self._items[key] = value
"""

LOCK_GUARD_GOOD = """
    import threading

    class Store:
        def __init__(self):
            self._lock = threading.Lock()
            self._items = {}

        def put(self, key, value):
            with self._lock:
                self._items[key] = value
"""

LOCK_GUARD_HELPER = """
    import threading

    class Store:
        def __init__(self):
            self._lock = threading.Lock()
            self._items = {}

        def put(self, key, value):
            with self._lock:
                self._insert(key, value)

        def _insert(self, key, value):
            self._items[key] = value
"""


class TestLockGuard:
    def test_fires_on_unguarded_write(self, tmp_path):
        report = run_checker(tmp_path, "lock-guard", LOCK_GUARD_BAD)
        assert len(report.findings) == 1
        finding = report.findings[0]
        assert finding.checker == "lock-guard"
        assert "Store.put" in finding.message
        assert "_items" in finding.message

    def test_silent_on_guarded_write(self, tmp_path):
        report = run_checker(tmp_path, "lock-guard", LOCK_GUARD_GOOD)
        assert report.findings == []

    def test_helper_called_only_under_lock_is_safe(self, tmp_path):
        report = run_checker(tmp_path, "lock-guard", LOCK_GUARD_HELPER)
        assert report.findings == []

    def test_class_without_lock_is_out_of_scope(self, tmp_path):
        report = run_checker(
            tmp_path,
            "lock-guard",
            """
            class Plain:
                def __init__(self):
                    self._items = {}

                def put(self, key, value):
                    self._items[key] = value
            """,
        )
        assert report.findings == []


# --------------------------------------------------------------------------- #
# lock-order
# --------------------------------------------------------------------------- #


LOCK_ORDER_A = """
    import threading

    LOCK_A = threading.Lock()

    def with_a_then_b():
        with LOCK_A:
            acquire_b()

    def acquire_a():
        with LOCK_A:
            pass
"""

LOCK_ORDER_B_CYCLIC = """
    import threading

    LOCK_B = threading.Lock()

    def acquire_b():
        with LOCK_B:
            pass

    def with_b_then_a():
        with LOCK_B:
            acquire_a()
"""

LOCK_ORDER_B_CONSISTENT = """
    import threading

    LOCK_B = threading.Lock()

    def acquire_b():
        with LOCK_B:
            pass
"""


class TestLockOrder:
    def test_fires_on_cross_module_cycle(self, tmp_path):
        write(tmp_path, "mod_a.py", LOCK_ORDER_A)
        write(tmp_path, "mod_b.py", LOCK_ORDER_B_CYCLIC)
        report = analyze_paths([tmp_path], select=["lock-order"])
        assert len(report.findings) == 1
        message = report.findings[0].message
        assert "lock-order cycle" in message
        assert "mod_a.LOCK_A" in message
        assert "mod_b.LOCK_B" in message

    def test_silent_on_consistent_order(self, tmp_path):
        write(tmp_path, "mod_a.py", LOCK_ORDER_A)
        write(tmp_path, "mod_b.py", LOCK_ORDER_B_CONSISTENT)
        report = analyze_paths([tmp_path], select=["lock-order"])
        assert report.findings == []

    def test_lexical_nesting_builds_the_same_cycle(self, tmp_path):
        write(
            tmp_path,
            "mod.py",
            """
            import threading

            LOCK_X = threading.Lock()
            LOCK_Y = threading.Lock()

            def x_then_y():
                with LOCK_X:
                    with LOCK_Y:
                        pass

            def y_then_x():
                with LOCK_Y:
                    with LOCK_X:
                        pass
            """,
        )
        report = analyze_paths([tmp_path], select=["lock-order"])
        assert len(report.findings) == 1
        assert "potential deadlock" in report.findings[0].message


# --------------------------------------------------------------------------- #
# digest-purity
# --------------------------------------------------------------------------- #


DIGEST_BAD_TIME = """
    import time

    def stable_digest(payload):
        return repr(payload)

    def cache_key(params):
        stamp = time.time()
        return stable_digest({"params": params, "stamp": stamp})
"""

DIGEST_GOOD = """
    def stable_digest(payload):
        return repr(payload)

    def cache_key(params):
        return stable_digest({"params": params})
"""


class TestDigestPurity:
    def test_fires_on_time_in_root(self, tmp_path):
        report = run_checker(tmp_path, "digest-purity", DIGEST_BAD_TIME)
        assert len(report.findings) == 1
        assert "time.time()" in report.findings[0].message

    def test_silent_on_pure_root(self, tmp_path):
        report = run_checker(tmp_path, "digest-purity", DIGEST_GOOD)
        assert report.findings == []

    def test_fires_on_impure_feeder_function(self, tmp_path):
        # ``canonical`` is called inside the digest argument list, so its
        # body feeds the digest and is scanned transitively.
        report = run_checker(
            tmp_path,
            "digest-purity",
            """
            import time

            def stable_digest(payload):
                return repr(payload)

            def canonical(params):
                return {"params": params, "at": time.time()}

            def cache_key(params):
                return stable_digest(canonical(params))
            """,
        )
        assert len(report.findings) == 1
        assert "canonical" in report.findings[0].message

    def test_fires_on_unordered_set_iteration(self, tmp_path):
        report = run_checker(
            tmp_path,
            "digest-purity",
            """
            def stable_digest(payload):
                return repr(payload)

            def keys_digest(names):
                parts = []
                for name in set(names):
                    parts.append(name)
                return stable_digest(parts)
            """,
        )
        assert len(report.findings) == 1
        assert "unordered set" in report.findings[0].message

    def test_fires_on_excluded_field_in_digest_arguments(self, tmp_path):
        report = run_checker(
            tmp_path,
            "digest-purity",
            """
            def stable_digest(payload):
                return repr(payload)

            def job_key(job):
                return stable_digest({"deadline": job.deadline_s})
            """,
        )
        assert len(report.findings) == 1
        assert "deadline_s" in report.findings[0].message

    def test_excluded_field_outside_digest_arguments_is_legal(self, tmp_path):
        # A root may read deadline_s for unrelated bookkeeping (arming a
        # timer) as long as the read never lands in the digest input.
        report = run_checker(
            tmp_path,
            "digest-purity",
            """
            def stable_digest(payload):
                return repr(payload)

            def submit(job):
                key = stable_digest({"params": job.params})
                budget = job.deadline_s
                return key, budget
            """,
        )
        assert report.findings == []


# --------------------------------------------------------------------------- #
# metric-labels
# --------------------------------------------------------------------------- #


class TestMetricLabels:
    def test_fires_on_fstring_label(self, tmp_path):
        report = run_checker(
            tmp_path,
            "metric-labels",
            """
            def record(counter, user):
                counter.inc(route=f"/users/{user}")
            """,
        )
        assert len(report.findings) == 1
        assert "'route'" in report.findings[0].message

    def test_fires_on_format_call_label(self, tmp_path):
        report = run_checker(
            tmp_path,
            "metric-labels",
            """
            def record(histogram, code):
                histogram.observe(0.5, status="{}xx".format(code))
            """,
        )
        assert len(report.findings) == 1

    def test_fires_on_interpolated_timed_operation(self, tmp_path):
        report = run_checker(
            tmp_path,
            "metric-labels",
            """
            from repro.obs import timed

            def run(name):
                with timed(f"job.{name}"):
                    pass
            """,
        )
        assert len(report.findings) == 1
        assert "operation" in report.findings[0].message

    def test_silent_on_closed_set_labels(self, tmp_path):
        report = run_checker(
            tmp_path,
            "metric-labels",
            """
            from repro.obs import timed

            def record(counter, route_label):
                counter.inc(route=route_label, method="GET")
                counter.observe(amount=1.5, op="compress")
                with timed("job.run"):
                    pass
            """,
        )
        assert report.findings == []


# --------------------------------------------------------------------------- #
# silent-except
# --------------------------------------------------------------------------- #


class TestSilentExcept:
    def test_fires_on_broad_silent_handler(self, tmp_path):
        report = run_checker(
            tmp_path,
            "silent-except",
            """
            def load(path):
                try:
                    return path.read_text()
                except Exception:
                    pass
                return None
            """,
        )
        assert len(report.findings) == 1
        assert "silent except" in report.findings[0].message

    def test_silent_when_handler_counts_the_failure(self, tmp_path):
        report = run_checker(
            tmp_path,
            "silent-except",
            """
            ERRORS = []

            def load(path):
                try:
                    return path.read_text()
                except Exception:
                    ERRORS.append(str(path))
                return None
            """,
        )
        assert report.findings == []

    def test_narrow_silent_handler_is_legal_outside_zones(self, tmp_path):
        report = run_checker(
            tmp_path,
            "silent-except",
            """
            def parse(text):
                try:
                    return int(text)
                except ValueError:
                    pass
                return 0
            """,
        )
        assert report.findings == []

    def test_narrow_silent_handler_fires_in_best_effort_zone(self, tmp_path):
        # The module name is derived src-rooted, so a file placed at
        # src/repro/service/journal.py lands in the best-effort zone where
        # even narrow silence is a finding.
        write(
            tmp_path,
            "src/repro/service/journal.py",
            """
            def append(path, line):
                try:
                    path.write_text(line)
                except OSError:
                    pass
            """,
        )
        report = analyze_paths([tmp_path], select=["silent-except"])
        assert len(report.findings) == 1
        assert "best-effort zone" in report.findings[0].message


# --------------------------------------------------------------------------- #
# span-hygiene
# --------------------------------------------------------------------------- #


class TestSpanHygiene:
    def test_fires_on_success_path_only_finish(self, tmp_path):
        report = run_checker(
            tmp_path,
            "span-hygiene",
            """
            def traced(tracer, work):
                span = tracer.start_span("work")
                result = work()
                span.finish()
                return result
            """,
        )
        assert len(report.findings) == 1
        assert "success path" in report.findings[0].message

    def test_fires_on_never_finished_span(self, tmp_path):
        report = run_checker(
            tmp_path,
            "span-hygiene",
            """
            def traced(tracer, work):
                span = tracer.start_span("work")
                return work()
            """,
        )
        assert len(report.findings) == 1
        assert "never finished" in report.findings[0].message

    def test_silent_on_try_finally(self, tmp_path):
        report = run_checker(
            tmp_path,
            "span-hygiene",
            """
            def traced(tracer, work):
                span = tracer.start_span("work")
                try:
                    return work()
                finally:
                    span.finish()
            """,
        )
        assert report.findings == []

    def test_silent_on_success_plus_broad_except_finish(self, tmp_path):
        report = run_checker(
            tmp_path,
            "span-hygiene",
            """
            def traced(tracer, work):
                span = tracer.start_span("work")
                try:
                    result = work()
                    span.finish()
                    return result
                except Exception:
                    span.finish()
                    raise
            """,
        )
        assert report.findings == []

    def test_escaped_span_is_skipped(self, tmp_path):
        # A span handed to another call has its lifecycle managed there.
        report = run_checker(
            tmp_path,
            "span-hygiene",
            """
            def traced(tracer, register):
                span = tracer.start_span("work")
                register(span)
            """,
        )
        assert report.findings == []

    def test_fires_on_timed_outside_with(self, tmp_path):
        report = run_checker(
            tmp_path,
            "span-hygiene",
            """
            from repro.obs import timed

            def bad(name):
                timer = timed("op")
                return timer
            """,
        )
        assert len(report.findings) == 1
        assert "context manager" in report.findings[0].message


# --------------------------------------------------------------------------- #
# Suppression comments
# --------------------------------------------------------------------------- #


class TestSuppression:
    def test_parse_same_line_and_line_above(self):
        source = textwrap.dedent(
            """
            x = 1  # repro: ignore[lock-guard] justified because reasons
            # repro: ignore[digest-purity, metric-labels]
            y = 2
            """
        ).strip()
        marks = parse_suppressions(source)
        assert marks[1] == {"lock-guard"}
        assert marks[3] == {"digest-purity", "metric-labels"}

    def test_suppressed_finding_moves_to_acknowledged(self, tmp_path):
        report = run_checker(
            tmp_path,
            "silent-except",
            """
            def load(path):
                try:
                    return path.read_text()
                except Exception:  # repro: ignore[silent-except] probing only
                    pass
                return None
            """,
        )
        assert report.findings == []
        assert len(report.suppressed) == 1
        assert report.suppressed[0].checker == "silent-except"
        assert report.clean

    def test_ignore_all_suppresses_any_checker(self, tmp_path):
        report = run_checker(
            tmp_path,
            "silent-except",
            """
            def load(path):
                try:
                    return path.read_text()
                except Exception:  # repro: ignore[all]
                    pass
                return None
            """,
        )
        assert report.findings == []
        assert len(report.suppressed) == 1

    def test_wrong_checker_id_does_not_suppress(self, tmp_path):
        report = run_checker(
            tmp_path,
            "silent-except",
            """
            def load(path):
                try:
                    return path.read_text()
                except Exception:  # repro: ignore[lock-guard]
                    pass
                return None
            """,
        )
        assert len(report.findings) == 1
        assert report.suppressed == []


# --------------------------------------------------------------------------- #
# Engine behavior
# --------------------------------------------------------------------------- #


class TestEngine:
    def test_missing_path_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            analyze_paths([tmp_path / "nope.py"])

    def test_unknown_checker_raises(self, tmp_path):
        write(tmp_path, "mod.py", "x = 1\n")
        with pytest.raises(ValueError, match="unknown checker"):
            analyze_paths([tmp_path], select=["bogus"])

    def test_syntax_error_becomes_finding(self, tmp_path):
        write(tmp_path, "broken.py", "def oops(:\n")
        report = analyze_paths([tmp_path])
        assert any(f.checker == "syntax-error" for f in report.findings)

    def test_ignore_filters_a_checker_out(self, tmp_path):
        write(tmp_path, "mod.py", textwrap.dedent(LOCK_GUARD_BAD))
        with_checker = analyze_paths([tmp_path])
        without = analyze_paths([tmp_path], ignore=["lock-guard"])
        assert any(f.checker == "lock-guard" for f in with_checker.findings)
        assert not any(f.checker == "lock-guard" for f in without.findings)
        assert "lock-guard" not in without.checkers

    def test_format_table_and_json_round_trip(self):
        findings = [
            Finding(path="a.py", line=3, checker="lock-guard", message="msg"),
        ]
        table = format_table(findings)
        assert "a.py:3" in table and "[lock-guard]" in table
        payload = json.loads(format_json(findings, []))
        assert payload["findings"][0]["checker"] == "lock-guard"
        assert payload["suppressed"] == []


# --------------------------------------------------------------------------- #
# CLI exit codes
# --------------------------------------------------------------------------- #


class TestAnalyzeCli:
    def test_exit_zero_on_clean_tree(self, tmp_path, capsys):
        write(tmp_path, "mod.py", "x = 1\n")
        assert cli_main(["analyze", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "0 finding(s)" in out

    def test_exit_one_on_findings(self, tmp_path, capsys):
        write(tmp_path, "mod.py", textwrap.dedent(LOCK_GUARD_BAD))
        assert cli_main(["analyze", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "[lock-guard]" in out

    def test_exit_two_on_unknown_checker(self, tmp_path, capsys):
        write(tmp_path, "mod.py", "x = 1\n")
        code = cli_main(["analyze", str(tmp_path), "--select", "bogus"])
        assert code == 2
        assert "unknown checker" in capsys.readouterr().err

    def test_exit_two_on_missing_path(self, tmp_path, capsys):
        code = cli_main(["analyze", str(tmp_path / "missing")])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_list_prints_catalog(self, capsys):
        assert cli_main(["analyze", "--list"]) == 0
        out = capsys.readouterr().out
        for name in EXPECTED_CHECKERS:
            assert name in out

    def test_json_format_is_machine_readable(self, tmp_path, capsys):
        write(tmp_path, "mod.py", textwrap.dedent(LOCK_GUARD_BAD))
        assert cli_main(["analyze", str(tmp_path), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"][0]["checker"] == "lock-guard"

    def test_show_suppressed_lists_acknowledged(self, tmp_path, capsys):
        write(
            tmp_path,
            "mod.py",
            textwrap.dedent(
                """
                def load(path):
                    try:
                        return path.read_text()
                    except Exception:  # repro: ignore[silent-except] probe
                        pass
                    return None
                """
            ),
        )
        assert cli_main(["analyze", str(tmp_path), "--show-suppressed"]) == 0
        out = capsys.readouterr().out
        assert "suppressed:" in out
        assert "[silent-except]" in out


# --------------------------------------------------------------------------- #
# The gate itself
# --------------------------------------------------------------------------- #


class TestSourceTreeInvariants:
    def test_src_repro_has_zero_unsuppressed_findings(self):
        """The CI gate's contract: the shipped tree passes its own checkers."""
        report = analyze_paths([REPO_ROOT / "src" / "repro"])
        assert report.findings == [], format_table(report.findings)
        assert report.files > 50
        # Every suppression in the tree is a deliberate, justified exception;
        # a ballooning count means suppressions are being used as a bypass.
        assert len(report.suppressed) <= 8
