"""Tests for tensor-level binary pruning and the BBS dot-product identities."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.binary_pruning import (
    bbs_dot_product,
    compressed_dot_product,
    prune_group,
    prune_tensor,
)
from repro.core.encoding import PruningStrategy


class TestBbsDotProduct:
    def test_matches_reference(self, fresh_rng):
        for _ in range(50):
            weights = fresh_rng.integers(-128, 128, 16)
            activations = fresh_rng.integers(-128, 128, 16)
            assert bbs_dot_product(weights, activations) == int(weights @ activations)

    def test_all_zero_weights(self):
        assert bbs_dot_product(np.zeros(8, dtype=np.int64), np.arange(8)) == 0

    def test_all_ones_weights(self):
        activations = np.arange(8)
        weights = np.full(8, -1)
        assert bbs_dot_product(weights, activations) == int(weights @ activations)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            bbs_dot_product(np.zeros(4, dtype=np.int64), np.zeros(5, dtype=np.int64))

    @given(
        st.lists(st.integers(-128, 127), min_size=1, max_size=32),
        st.integers(0, 2**32 - 1),
    )
    @settings(max_examples=80, deadline=None)
    def test_identity_property(self, weight_values, seed):
        # Equations 1-3: the bi-directional bit-serial formulation is exact.
        weights = np.array(weight_values)
        activations = np.random.default_rng(seed).integers(-128, 128, weights.size)
        assert bbs_dot_product(weights, activations) == int(weights @ activations)


class TestCompressedDotProduct:
    @pytest.mark.parametrize(
        "strategy", [PruningStrategy.ROUNDED_AVERAGE, PruningStrategy.ZERO_POINT_SHIFT]
    )
    @pytest.mark.parametrize("columns", [0, 2, 4, 6])
    def test_matches_decoded_weights(self, strategy, columns, fresh_rng):
        for _ in range(10):
            weights = fresh_rng.integers(-128, 128, 32)
            activations = fresh_rng.integers(-128, 128, 32)
            pruned = prune_group(weights, columns, strategy)
            assert compressed_dot_product(pruned, activations) == int(
                pruned.values @ activations
            )

    def test_shape_mismatch(self, fresh_rng):
        pruned = prune_group(fresh_rng.integers(-10, 10, 16), 2)
        with pytest.raises(ValueError):
            compressed_dot_product(pruned, np.zeros(8, dtype=np.int64))


class TestPruneGroup:
    def test_dispatch_rounded_average(self, fresh_rng):
        pruned = prune_group(fresh_rng.integers(-20, 20, 16), 2, "rounded_average")
        assert pruned.strategy is PruningStrategy.ROUNDED_AVERAGE

    def test_dispatch_zero_point(self, fresh_rng):
        pruned = prune_group(fresh_rng.integers(-20, 20, 16), 2, "zero_point_shift")
        assert pruned.strategy is PruningStrategy.ZERO_POINT_SHIFT

    def test_rejects_none_strategy(self, fresh_rng):
        with pytest.raises(ValueError):
            prune_group(fresh_rng.integers(-20, 20, 16), 2, "none")


class TestPruneTensor:
    def test_effective_bits_moderate(self, int8_matrix):
        pruned = prune_tensor(int8_matrix, 4, PruningStrategy.ZERO_POINT_SHIFT)
        assert pruned.effective_bits() == pytest.approx(4.25)
        assert pruned.compression_ratio() == pytest.approx(8 / 4.25, rel=1e-6)

    def test_effective_bits_conservative(self, int8_matrix):
        pruned = prune_tensor(int8_matrix, 2, PruningStrategy.ROUNDED_AVERAGE)
        assert pruned.effective_bits() == pytest.approx(6.25)

    def test_shape_preserved(self, int8_matrix):
        pruned = prune_tensor(int8_matrix, 2)
        assert pruned.values.shape == int8_matrix.shape

    def test_zero_columns_is_identity(self, int8_matrix):
        pruned = prune_tensor(int8_matrix, 0)
        assert np.array_equal(pruned.values, int8_matrix)
        assert pruned.mse() == 0.0

    def test_values_stay_in_range(self, int8_matrix):
        pruned = prune_tensor(int8_matrix, 4, PruningStrategy.ZERO_POINT_SHIFT)
        assert pruned.values.min() >= -128
        assert pruned.values.max() <= 127

    def test_sensitive_channels_untouched(self, int8_matrix):
        sensitive = np.zeros(int8_matrix.shape[0], dtype=bool)
        sensitive[:10] = True
        pruned = prune_tensor(
            int8_matrix, 4, PruningStrategy.ZERO_POINT_SHIFT, sensitive_channels=sensitive
        )
        assert np.array_equal(pruned.values[:10], int8_matrix[:10])
        assert not np.array_equal(pruned.values[10:], int8_matrix[10:])

    def test_sensitive_channels_increase_effective_bits(self, int8_matrix):
        sensitive = np.zeros(int8_matrix.shape[0], dtype=bool)
        sensitive[: int8_matrix.shape[0] // 2] = True
        mixed = prune_tensor(int8_matrix, 4, sensitive_channels=sensitive)
        uniform = prune_tensor(int8_matrix, 4)
        assert mixed.effective_bits() > uniform.effective_bits()

    def test_mse_increases_with_columns(self, int8_matrix):
        previous = -1.0
        for columns in (1, 2, 4, 6):
            pruned = prune_tensor(int8_matrix, columns, PruningStrategy.ZERO_POINT_SHIFT)
            assert pruned.mse() >= previous
            previous = pruned.mse()

    def test_kl_divergence_reported(self, int8_matrix):
        pruned = prune_tensor(int8_matrix, 4, PruningStrategy.ZERO_POINT_SHIFT)
        assert pruned.kl_divergence() >= 0.0

    def test_no_original_kept(self, int8_matrix):
        pruned = prune_tensor(int8_matrix, 4, keep_original=False)
        assert pruned.original is None
        assert pruned.mse() == 0.0
        assert pruned.kl_divergence() == 0.0

    def test_non_multiple_reduction_is_padded(self, fresh_rng):
        weights = fresh_rng.integers(-128, 128, (8, 45))
        pruned = prune_tensor(weights, 2, group_size=32)
        assert pruned.values.shape == weights.shape

    def test_rejects_float_weights(self):
        with pytest.raises(TypeError):
            prune_tensor(np.zeros((4, 32)), 2)

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            prune_tensor(np.zeros(32, dtype=np.int64), 2)

    def test_rejects_bad_sensitive_shape(self, int8_matrix):
        with pytest.raises(ValueError):
            prune_tensor(int8_matrix, 2, sensitive_channels=np.zeros(3, dtype=bool))

    def test_storage_accounting_consistency(self, int8_matrix):
        pruned = prune_tensor(int8_matrix, 4, PruningStrategy.ZERO_POINT_SHIFT)
        # channels * groups * (stored columns * group + metadata)
        channels, reduction = int8_matrix.shape
        groups = reduction // 32
        expected = channels * groups * (32 * 4 + 8)
        assert pruned.storage_bits() == expected
        assert pruned.dense_storage_bits() == channels * groups * 32 * 8

    @given(st.integers(0, 6), st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_pruned_column_metadata_consistent_property(self, columns, seed):
        rng = np.random.default_rng(seed)
        weights = rng.integers(-128, 128, (4, 64))
        pruned = prune_tensor(weights, columns, PruningStrategy.ZERO_POINT_SHIFT)
        total = pruned.num_redundant + pruned.num_sparse
        assert np.all(total <= columns)
        if columns:
            assert np.all(total == columns)
