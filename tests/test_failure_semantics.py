"""Hardened failure semantics: deadlines, circuit breaking, Retry-After
backpressure, jittered polling, crashed workers, and graceful shutdown."""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.obs.metrics import get_metrics
from repro.service import (
    CircuitBreaker,
    CircuitBreakerOpen,
    JobJournal,
    JobState,
    ResultCache,
    ScenarioRegistry,
    ServiceClient,
    WorkerPool,
    create_server,
    job_cancelled,
)
from repro.service.client import (
    ServiceRequestError,
    ServiceUnavailable,
    _retry_after_hint,
)
from repro.service.registry import build_default_registry


def gated_registry():
    """echo plus a slow job blocked on a gate the test controls."""
    registry = ScenarioRegistry()
    gate = threading.Event()
    started = threading.Event()
    cancel_seen = []

    def echo(value=0):
        return {"value": value}

    def slow(value=0):
        started.set()
        assert gate.wait(30), "test never released the gate"
        return {"value": value}

    def cooperative(value=0):
        started.set()
        for _ in range(500):
            if job_cancelled():
                cancel_seen.append(True)
                return {"bailed": True}
            time.sleep(0.01)
        return {"bailed": False}

    registry.add("echo", "echo", echo, {"value": 0})
    registry.add("slow", "blocks on a gate", slow, {"value": 0})
    registry.add("cooperative", "polls job_cancelled()", cooperative, {"value": 0})
    registry.gate = gate
    registry.started = started
    registry.cancel_seen = cancel_seen
    return registry


@pytest.fixture()
def pool():
    registry = gated_registry()
    pool = WorkerPool(registry, cache=ResultCache(max_entries=32), max_workers=1)
    pool.test_registry = registry
    yield pool
    registry.gate.set()
    pool.shutdown()


# --------------------------------------------------------------------------- #
# Deadlines
# --------------------------------------------------------------------------- #


class TestDeadlines:
    def test_queued_job_expires_into_failed(self, pool):
        registry = pool.test_registry
        counter = get_metrics().counter("repro_jobs_total", "", ("scenario", "event"))
        before = counter.value(scenario="echo", event="deadline")

        pool.submit("slow")  # occupies the single worker
        assert registry.started.wait(10)
        queued = pool.submit("echo", {"value": 1}, deadline_s=0.15)
        assert queued.wait(10)
        assert queued.state is JobState.FAILED
        assert "deadline" in queued.error and "queued" in queued.error
        assert pool.stats()["expired"] == 1
        assert counter.value(scenario="echo", event="deadline") == before + 1
        registry.gate.set()

    def test_running_job_expires_without_double_finish(self, tmp_path):
        registry = gated_registry()
        journal = JobJournal(tmp_path)
        pool = WorkerPool(registry, cache=ResultCache(), max_workers=1, journal=journal)
        try:
            job = pool.submit("slow", deadline_s=0.15)
            assert registry.started.wait(10)
            assert job.wait(10)
            assert job.state is JobState.FAILED
            assert "deadline" in job.error and "running" in job.error
            # Let the worker body return *after* the expiry and settle.
            registry.gate.set()
            time.sleep(0.3)
            assert job.state is JobState.FAILED, "the late worker must not win"
        finally:
            registry.gate.set()
            pool.shutdown()
            journal.close()
        finishes = [
            json.loads(line)
            for line in (tmp_path / "journal.jsonl").read_text().splitlines()
            if json.loads(line)["event"] in ("done", "failed", "cancelled")
        ]
        assert len(finishes) == 1 and finishes[0]["event"] == "failed"

    def test_cooperative_body_observes_cancellation(self, pool):
        registry = pool.test_registry
        start = time.perf_counter()
        job = pool.submit("cooperative", deadline_s=0.2)
        assert job.wait(10)
        assert job.state is JobState.FAILED and "deadline" in job.error
        # The body saw the flag and bailed out well before its 5s worst case.
        deadline = time.perf_counter() + 5
        while not registry.cancel_seen and time.perf_counter() < deadline:
            time.sleep(0.01)
        assert registry.cancel_seen == [True]
        assert time.perf_counter() - start < 4

    def test_finished_job_never_expires(self, pool):
        job = pool.run("echo", {"value": 2}, timeout=10, deadline_s=30.0)
        assert job.state is JobState.DONE
        deadline = time.perf_counter() + 5
        while pool._deadline_timers and time.perf_counter() < deadline:
            time.sleep(0.01)
        assert not pool._deadline_timers, "finished jobs must drop their timers"

    def test_deadline_not_part_of_content_digest(self, pool):
        first = pool.run("echo", {"value": 3}, timeout=10, deadline_s=30.0)
        second = pool.run("echo", {"value": 3}, timeout=10)
        assert second.cache_hit and second.digest == first.digest

    @pytest.mark.parametrize("bad", [0, -1, True, "soon"])
    def test_invalid_deadline_rejected(self, pool, bad):
        with pytest.raises(ValueError, match="deadline_s"):
            pool.submit("echo", deadline_s=bad)

    def test_replayed_deadline_rearms_with_full_budget(self, tmp_path):
        from repro.service.workers import job_digest

        journal = JobJournal(tmp_path)
        journal.record(
            "submit", job_id="job-000009", type="slow", params={"value": 0},
            digest=job_digest("slow", {"value": 0}), submitted_at=0.0,
            deadline_s=0.15,
        )
        journal.close()

        registry = gated_registry()  # the gate stays shut: the job can't finish
        pool = WorkerPool(registry, cache=ResultCache(), max_workers=1)
        try:
            stats = JobJournal(tmp_path).replay(pool)
            assert stats["requeued"] == 1
            job = pool.store.get("job-000009")
            assert job.deadline_s == 0.15
            assert job.wait(10)
            assert job.state is JobState.FAILED and "deadline" in job.error
        finally:
            registry.gate.set()
            pool.shutdown()


class TestDeadlineOverHttp:
    def test_deadline_s_accepted_and_enforced(self):
        registry = gated_registry()
        server = create_server(port=0, registry=registry, max_workers=1)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        base = f"http://127.0.0.1:{server.port}"
        try:
            client = ServiceClient(base, retries=0)
            record = client.submit("slow", deadline_s=0.2)
            assert record["deadline_s"] == 0.2
            deadline = time.perf_counter() + 10
            while record["state"] not in ("done", "failed", "cancelled"):
                assert time.perf_counter() < deadline
                time.sleep(0.02)
                record = client.job(record["job_id"])
            assert record["state"] == "failed" and "deadline" in record["error"]

            with pytest.raises(ServiceRequestError) as excinfo:
                client.submit("echo", deadline_s=-1)
            assert "deadline_s" in str(excinfo.value)
        finally:
            registry.gate.set()
            server.close()
            thread.join(timeout=10)


# --------------------------------------------------------------------------- #
# Circuit breaker
# --------------------------------------------------------------------------- #


class TestCircuitBreaker:
    def test_opens_after_threshold_then_half_open_probe(self):
        now = [0.0]
        breaker = CircuitBreaker(failure_threshold=3, reset_timeout=10.0,
                                 clock=lambda: now[0])
        for _ in range(3):
            assert breaker.allow()
            breaker.record_failure()
        assert breaker.state == "open" and not breaker.allow()
        assert breaker.retry_in() == pytest.approx(10.0)

        now[0] = 11.0
        assert breaker.allow()  # the half-open probe
        assert breaker.state == "half-open"
        assert not breaker.allow(), "only one probe owns the half-open slot"
        breaker.record_success()
        assert breaker.state == "closed" and breaker.allow()

    def test_half_open_failure_reopens(self):
        now = [0.0]
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=5.0,
                                 clock=lambda: now[0])
        breaker.record_failure()
        now[0] = 6.0
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.stats()["transitions"]["open"] == 2

    def test_success_resets_the_failure_streak(self):
        breaker = CircuitBreaker(failure_threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_client_fails_fast_when_open(self):
        breaker = CircuitBreaker(failure_threshold=2, reset_timeout=60.0)
        client = ServiceClient("http://127.0.0.1:1", retries=0, backoff=0.0,
                               sleep=lambda s: None, breaker=breaker)
        for _ in range(2):
            with pytest.raises(ServiceUnavailable):
                client.health()
        assert breaker.state == "open"
        with pytest.raises(CircuitBreakerOpen) as excinfo:
            client.health()
        assert excinfo.value.attempts == 0, "open breaker must not touch the network"
        assert isinstance(excinfo.value, ServiceUnavailable)

    def test_429_saturation_never_opens_the_breaker(self):
        registry = gated_registry()
        server = create_server(port=0, registry=registry, max_workers=1, max_queued=1)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            breaker = CircuitBreaker(failure_threshold=1)
            client = ServiceClient(f"http://127.0.0.1:{server.port}", retries=0,
                                   sleep=lambda s: None, breaker=breaker)
            client.submit("slow")  # saturate the single queue slot
            assert registry.started.wait(10)
            for value in range(3):
                with pytest.raises(ServiceUnavailable) as excinfo:
                    client.submit("echo", {"value": value})
                assert excinfo.value.saturated
            assert breaker.state == "closed", "busy is not broken"
        finally:
            registry.gate.set()
            server.close()
            thread.join(timeout=10)


# --------------------------------------------------------------------------- #
# Retry-After backpressure
# --------------------------------------------------------------------------- #


class TestRetryAfter:
    @pytest.fixture()
    def saturated(self):
        registry = gated_registry()
        server = create_server(port=0, registry=registry, max_workers=1, max_queued=1)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        base = f"http://127.0.0.1:{server.port}"
        ServiceClient(base, retries=0).submit("slow")
        assert registry.started.wait(10)
        yield base
        registry.gate.set()
        server.close()
        thread.join(timeout=10)

    def test_429_carries_header_and_body_hint(self, saturated):
        request = urllib.request.Request(
            saturated + "/v1/jobs",
            data=json.dumps({"type": "echo", "params": {"value": 9}}).encode(),
            headers={"Content-Type": "application/json"}, method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        error = excinfo.value
        assert error.code == 429
        assert int(error.headers["Retry-After"]) >= 1
        body = json.loads(error.read())
        assert isinstance(body["retry_after"], float) and body["retry_after"] > 0

    def test_client_sleeps_the_server_hint(self, saturated):
        sleeps: list[float] = []
        client = ServiceClient(saturated, retries=2, backoff=5.0,
                               sleep=sleeps.append)
        with pytest.raises(ServiceUnavailable) as excinfo:
            client.submit("echo", {"value": 10})
        assert excinfo.value.saturated
        # Both retry sleeps took the server's 0.5s hint, not 5s/10s backoff.
        assert sleeps == [pytest.approx(0.5), pytest.approx(0.5)]

    def test_hint_parsing_prefers_body_and_clamps(self):
        def http_error(headers: dict):
            import email.message

            message = email.message.Message()
            for key, value in headers.items():
                message[key] = value
            return urllib.error.HTTPError("http://x", 429, "busy", message, None)

        assert _retry_after_hint(http_error({}), {"retry_after": 1.25}) == 1.25
        assert _retry_after_hint(http_error({"Retry-After": "3"}), {}) == 3.0
        assert _retry_after_hint(
            http_error({"Retry-After": "2"}), {"retry_after": 0.25}
        ) == 0.25, "the body's float beats the header's integer"
        assert _retry_after_hint(http_error({}), {"retry_after": 9000}) == 30.0
        assert _retry_after_hint(http_error({"Retry-After": "soon"}), None) is None
        assert _retry_after_hint(http_error({}), {"retry_after": True}) is None

    def test_pool_hint_tracks_observed_durations(self, pool):
        assert pool.retry_after_hint() == 0.5  # nothing observed yet
        pool.run("echo", {"value": 11}, timeout=10)
        hint = pool.retry_after_hint()
        assert 0.1 <= hint <= 30.0


class TestJitteredPolling:
    def test_run_job_backs_off_with_cap(self, monkeypatch):
        registry = gated_registry()
        server = create_server(port=0, registry=registry, max_workers=1)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        monkeypatch.setattr("repro.service.client.random.uniform",
                            lambda a, b: 1.0)
        sleeps: list[float] = []

        def record_sleep(seconds: float) -> None:
            sleeps.append(seconds)
            if len(sleeps) == 8:
                registry.gate.set()  # let the job finish after 8 polls

        try:
            client = ServiceClient(f"http://127.0.0.1:{server.port}",
                                   retries=0, sleep=record_sleep)
            result = client.run_job("slow", {"value": 12}, poll_interval=0.05,
                                    poll_cap=0.4, timeout=30)
            assert result == {"value": 12}
        finally:
            registry.gate.set()
            server.close()
            thread.join(timeout=10)

        assert len(sleeps) >= 8
        assert sleeps[0] == pytest.approx(0.05)
        for previous, current in zip(sleeps, sleeps[1:], strict=False):
            assert current == pytest.approx(min(previous * 1.7, 0.4))
        assert max(sleeps) <= 0.4 + 1e-9


# --------------------------------------------------------------------------- #
# Crashed worker processes
# --------------------------------------------------------------------------- #


class TestBrokenProcessPool:
    def test_dead_worker_fails_the_job_and_pool_recovers(self):
        pool = WorkerPool(build_default_registry(), cache=ResultCache(),
                          max_workers=1, use_processes=True)
        try:
            job = pool.submit("prune_tensor", {"rows": 512, "cols": 2048})
            deadline = time.perf_counter() + 30
            while not pool._executor._processes and time.perf_counter() < deadline:
                time.sleep(0.01)
            for pid in list(pool._executor._processes):
                os.kill(pid, signal.SIGKILL)

            assert job.wait(60)
            assert job.state is JobState.FAILED
            assert "worker process crashed" in job.error
            assert pool.stats()["broken_rebuilds"] >= 1

            # The rebuilt pool still executes jobs.
            again = pool.run("prune_tensor", {"rows": 16, "cols": 64}, timeout=120)
            assert again.state is JobState.DONE
        finally:
            pool.shutdown(wait=False)


# --------------------------------------------------------------------------- #
# Graceful shutdown
# --------------------------------------------------------------------------- #


class TestGracefulShutdown:
    def test_drain_finishes_running_and_requeues_queued(self, tmp_path):
        registry = gated_registry()
        journal = JobJournal(tmp_path)
        pool = WorkerPool(registry,
                          cache=ResultCache(directory=tmp_path / "cache"),
                          max_workers=1, journal=journal)
        running = pool.submit("slow", {"value": 1})
        assert registry.started.wait(10)
        queued = [pool.submit("echo", {"value": v}) for v in (2, 3)]
        queued_futures = [pool._futures[job.job_id] for job in queued]

        def release_after_cancel():
            deadline = time.monotonic() + 10
            while (not all(f.cancelled() for f in queued_futures)
                   and time.monotonic() < deadline):
                time.sleep(0.01)
            registry.gate.set()

        releaser = threading.Thread(target=release_after_cancel)
        releaser.start()
        pool.shutdown(wait=True, cancel_pending=True)
        releaser.join()
        journal.close()

        assert running.state is JobState.DONE, "running work drains, not dies"
        assert all(job.state is JobState.QUEUED for job in queued)

        # The journal re-enqueues exactly the still-queued jobs on restart.
        registry2 = gated_registry()
        registry2.gate.set()
        pool2 = WorkerPool(registry2,
                           cache=ResultCache(directory=tmp_path / "cache"),
                           max_workers=2)
        stats = JobJournal(tmp_path).replay(pool2)
        assert stats["requeued"] == 2
        assert stats["completed"] == 1, "the drained job replays from cache"
        for job in queued:
            restored = pool2.store.get(job.job_id)
            assert restored.wait(10) and restored.state is JobState.DONE
        pool2.shutdown()

    def test_server_graceful_close_reports_drain(self, tmp_path):
        registry = gated_registry()
        server = create_server(port=0, registry=registry, max_workers=1,
                               journal_dir=str(tmp_path))
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        server.pool.submit("slow", {"value": 1})
        assert registry.started.wait(10)
        queued = server.pool.submit("echo", {"value": 2})
        queued_future = server.pool._futures[queued.job_id]

        def release_after_cancel():
            # server.shutdown() takes up to the serve loop's 0.5s poll
            # interval; only once the queued future is cancelled is it safe
            # to let the running job finish.
            deadline = time.monotonic() + 10
            while not queued_future.cancelled() and time.monotonic() < deadline:
                time.sleep(0.01)
            registry.gate.set()

        releaser = threading.Thread(target=release_after_cancel)
        releaser.start()
        stats = server.graceful_close()
        releaser.join()
        thread.join(timeout=10)

        assert stats["journaled"] is True
        assert stats["inflight"] == 2
        assert stats["requeued"] == 1 and stats["drained"] == 1

    def test_close_before_serve_forever_returns(self, tmp_path):
        # BaseServer.shutdown() waits on an event only serve_forever() sets;
        # a server torn down before ever serving (the CLI's failed gateway
        # registration path) must still close promptly instead of hanging.
        server = create_server(port=0, max_workers=1, journal_dir=str(tmp_path))
        done = threading.Event()

        def close():
            server.close(wait=False)
            done.set()

        threading.Thread(target=close, daemon=True).start()
        assert done.wait(10), "close() hung on a server that never served"

    def test_serve_cli_exits_zero_on_sigterm(self, tmp_path):
        process = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", "--port", "0",
             "--workers", "1", "--journal", str(tmp_path / "journal")],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
            env={**os.environ, "PYTHONPATH": "src", "PYTHONUNBUFFERED": "1"},
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        )
        try:
            deadline = time.monotonic() + 60
            for line in process.stdout:
                if "listening on" in line:
                    break
                assert time.monotonic() < deadline, "serve never came up"
            process.send_signal(signal.SIGTERM)
            output = process.stdout.read()
            assert process.wait(timeout=60) == 0
            assert "shutdown complete" in output
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=10)
