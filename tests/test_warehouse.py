"""Results-warehouse tests: schema migrations, idempotent ingest, queries.

The load-bearing properties: ingest is idempotent by provenance digest
(re-ingesting a run — or the same campaign from two directories — adds zero
rows), torn checkpoint files are skipped and counted rather than crashing
the pass, and one filter syntax answers identically through the query layer
wherever it is surfaced.
"""

from __future__ import annotations

import json
import sqlite3

import pytest

from repro import warehouse
from repro.campaign import CampaignRunner, parse_spec

#: Four fast deterministic codec cells with rich metric payloads.
SPEC = {
    "name": "wh-test",
    "grids": [
        {
            "name": "codecs",
            "scenario": "codec_compress",
            "params": {"rows": 16, "cols": 32, "seed": 0},
            "sweep": {"codec": ["prune", "ptq"], "scale": [1.0, 2.0]},
        }
    ],
}


@pytest.fixture(scope="module")
def run_dir(tmp_path_factory):
    path = tmp_path_factory.mktemp("wh-run")
    runner = CampaignRunner(parse_spec(SPEC), path, jobs=1)
    runner.run()
    return path


@pytest.fixture()
def conn():
    connection = warehouse.connect(":memory:")
    yield connection
    connection.close()


class TestSchema:
    def test_connect_applies_migrations(self, tmp_path):
        db = tmp_path / "wh.sqlite"
        connection = warehouse.connect(db)
        assert warehouse.schema_version(connection) == warehouse.SCHEMA_VERSION
        tables = {
            row[0]
            for row in connection.execute(
                "SELECT name FROM sqlite_master WHERE type='table'"
            )
        }
        assert {"runs", "cells", "metrics"} <= tables
        connection.close()

    def test_reopen_is_a_noop(self, tmp_path):
        db = tmp_path / "wh.sqlite"
        warehouse.connect(db).close()
        connection = warehouse.connect(db)
        assert warehouse.schema_version(connection) == warehouse.SCHEMA_VERSION
        connection.close()

    def test_newer_schema_is_rejected(self, tmp_path):
        db = tmp_path / "wh.sqlite"
        connection = warehouse.connect(db)
        connection.execute(f"PRAGMA user_version = {warehouse.SCHEMA_VERSION + 1}")
        connection.close()
        with pytest.raises(warehouse.SchemaError, match="newer"):
            warehouse.connect(db)
        with pytest.raises(warehouse.SchemaError, match="newer"):
            warehouse.connect_readonly(db)

    def test_readonly_requires_existing_warehouse(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            warehouse.connect_readonly(tmp_path / "missing.sqlite")
        plain = tmp_path / "plain.sqlite"
        sqlite3.connect(plain).close()  # a database, but not a warehouse
        with pytest.raises(warehouse.SchemaError, match="not a repro warehouse"):
            warehouse.connect_readonly(plain)

    def test_readonly_rejects_writes(self, tmp_path, run_dir):
        db = tmp_path / "wh.sqlite"
        connection = warehouse.connect(db)
        warehouse.ingest_run_dir(connection, run_dir)
        connection.close()
        readonly = warehouse.connect_readonly(db)
        with pytest.raises(sqlite3.OperationalError):
            readonly.execute("DELETE FROM cells")
        readonly.close()


class TestIngest:
    def test_campaign_run_dir(self, conn, run_dir):
        stats = warehouse.ingest_run_dir(conn, run_dir)
        assert stats.inserted == 4
        assert stats.duplicates == stats.invalid == 0
        run = conn.execute("SELECT * FROM runs").fetchone()
        assert run["source"] == "campaign"
        assert run["campaign"] == "wh-test"
        assert run["spec_digest"]
        cell = conn.execute("SELECT * FROM cells LIMIT 1").fetchone()
        assert cell["scenario"] == "codec_compress"
        assert cell["codec"] in ("prune", "ptq")

    def test_reingest_is_idempotent_by_digest(self, conn, run_dir):
        warehouse.ingest_run_dir(conn, run_dir)
        before = conn.execute("SELECT COUNT(*) FROM cells").fetchone()[0]
        stats = warehouse.ingest_run_dir(conn, run_dir)
        assert stats.inserted == 0
        assert stats.duplicates == 4
        assert conn.execute("SELECT COUNT(*) FROM cells").fetchone()[0] == before

    def test_torn_checkpoint_is_skipped_and_counted(self, conn, run_dir, tmp_path):
        import shutil

        copy = tmp_path / "torn-run"
        shutil.copytree(run_dir, copy)
        torn = copy / "results" / "torn.json"
        torn.write_text('{"digest": "x", "scena')  # a killed writer's torso
        (copy / "results" / "noise.json").write_text('["not", "a", "checkpoint"]')
        stats = warehouse.ingest_run_dir(conn, copy)
        assert stats.inserted == 4
        assert stats.invalid == 2
        assert str(torn) in stats.invalid_files

    def test_checkpoint_missing_required_fields_is_invalid(self, conn, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"digest": "d", "params": {}, "result": 1}))
        stats = warehouse.ingest_path(conn, bad)  # no scenario
        assert stats.invalid == 1 and stats.inserted == 0

    def test_single_checkpoint_file(self, conn, run_dir):
        checkpoint = sorted((run_dir / "results").glob("*.json"))[0]
        stats = warehouse.ingest_path(conn, checkpoint)
        assert stats.inserted == 1
        run = conn.execute("SELECT * FROM runs").fetchone()
        assert run["source"] == "checkpoint"

    def test_journal_dir_joins_submits_with_cache(self, conn, tmp_path):
        node = tmp_path / "node"
        (node / "cache").mkdir(parents=True)
        records = [
            {"event": "submit", "job_id": "job-1", "type": "codec_compress",
             "params": {"codec": "prune"}, "digest": "aaa"},
            {"event": "submit", "job_id": "job-2", "type": "codec_compress",
             "params": {"codec": "ptq"}, "digest": "bbb"},
            {"event": "submit", "job_id": "job-3", "type": "codec_compress",
             "params": {}, "digest": "ccc"},  # never finished: no cache file
        ]
        (node / "journal.jsonl").write_text(
            "\n".join(json.dumps(r) for r in records) + "\nnot json\n"
        )
        (node / "cache" / "aaa.json").write_text(json.dumps({"mse": 0.5}))
        (node / "cache" / "bbb.json").write_text('{"torn')  # corrupt payload
        stats = warehouse.ingest_path(conn, node)
        assert stats.inserted == 1
        assert stats.invalid == 1
        row = conn.execute("SELECT * FROM cells").fetchone()
        assert row["digest"] == "aaa"
        assert conn.execute("SELECT * FROM runs").fetchone()["source"] == "service"

    def test_unrecognized_path_raises(self, conn, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        with pytest.raises(warehouse.IngestError):
            warehouse.ingest_path(conn, empty)
        with pytest.raises(warehouse.IngestError):
            warehouse.ingest_path(conn, tmp_path / "nowhere")

    def test_ingest_paths_merges_stats(self, conn, run_dir):
        checkpoints = sorted((run_dir / "results").glob("*.json"))[:2]
        stats = warehouse.ingest_paths(conn, checkpoints)
        assert stats.sources == 2
        assert stats.inserted == 2

    def test_runner_auto_ingests_on_report(self, tmp_path):
        db = tmp_path / "auto.sqlite"
        runner = CampaignRunner(
            parse_spec(SPEC), tmp_path / "run", jobs=1, ingest_db=db
        )
        runner.run()  # writes the report, which triggers the ingest
        connection = warehouse.connect_readonly(db)
        assert connection.execute("SELECT COUNT(*) FROM cells").fetchone()[0] == 4
        connection.close()


class TestFilterParsing:
    def test_operators_and_json_values(self):
        assert warehouse.parse_filter("mse<0.5") == warehouse.Filter("mse", "<", 0.5)
        assert warehouse.parse_filter("codec=prune") == warehouse.Filter(
            "codec", "=", "prune"
        )
        assert warehouse.parse_filter("params.bits>=6").value == 6
        assert warehouse.parse_filter("cell!=\"g/0\"").value == "g/0"
        # Booleans become the 0/1 the metrics table stores.
        assert warehouse.parse_filter("params.flag=true").value == 1

    @pytest.mark.parametrize(
        "text", ["bogus", "=5", "a<", "a b", "name~3", "a={\"b\":1}", "a=[1]"]
    )
    def test_bad_expressions_raise(self, text):
        with pytest.raises(warehouse.QueryError):
            warehouse.parse_filter(text)


class TestQuery:
    @pytest.fixture()
    def loaded(self, conn, run_dir):
        warehouse.ingest_run_dir(conn, run_dir)
        return conn

    def test_identity_and_metric_filters_compose(self, loaded):
        rows, total = warehouse.query_cells(
            loaded,
            warehouse.parse_filters(["codec=prune", "params.scale=1.0"]),
        )
        assert total == len(rows) == 1
        assert rows[0]["codec"] == "prune"
        assert rows[0]["params.scale"] == 1.0

    def test_rows_keep_identity_over_result_leaves(self, loaded):
        # codec_compress results embed their own "digest" field; the row's
        # digest column must stay the provenance digest the cell is keyed on.
        rows, _ = warehouse.query_cells(loaded)
        stored = {
            row[0] for row in loaded.execute("SELECT digest FROM cells")
        }
        assert {row["digest"] for row in rows} == stored

    def test_sort_offset_limit_and_total(self, loaded):
        rows, total = warehouse.query_cells(
            loaded, sort="metrics.mse", descending=True, offset=1, limit=2
        )
        assert total == 4
        assert len(rows) == 2
        values = [row["metrics.mse"] for row in rows]
        assert values == sorted(values, reverse=True)

    def test_columns_restriction_is_rectangular(self, loaded):
        rows, _ = warehouse.query_cells(
            loaded, columns=["digest", "no_such_metric"]
        )
        assert all(set(row) == {"digest", "no_such_metric"} for row in rows)
        assert all(row["no_such_metric"] is None for row in rows)

    def test_missing_metric_never_matches(self, loaded):
        rows, total = warehouse.query_cells(
            loaded, [warehouse.parse_filter("no_such_metric!=1")]
        )
        assert total == 0 and rows == []

    def test_invalid_options_raise(self, loaded):
        with pytest.raises(warehouse.QueryError):
            warehouse.query_cells(loaded, offset=-1)
        with pytest.raises(warehouse.QueryError):
            warehouse.query_cells(loaded, limit=-1)

    def test_cell_detail_round_trips_payloads(self, loaded):
        digest = loaded.execute("SELECT digest FROM cells").fetchone()[0]
        detail = warehouse.cell_detail(loaded, digest)
        assert detail["digest"] == digest
        assert isinstance(detail["params"], dict)
        assert isinstance(detail["result"], dict)
        assert detail["metrics"]["metrics.mse"] == pytest.approx(
            detail["result"]["metrics"]["mse"]
        )
        assert warehouse.cell_detail(loaded, "absent") is None

    def test_default_columns_track_references(self):
        filters = warehouse.parse_filters(["metrics.mse<1", "codec=prune"])
        columns = warehouse.default_columns(filters, "metrics.effective_bits")
        assert columns == [
            "digest", "cell", "scenario", "codec",
            "metrics.mse", "metrics.effective_bits",
        ]


class TestPareto:
    ROWS = [
        {"digest": "a", "bits": 2.0, "mse": 1.0},
        {"digest": "b", "bits": 3.0, "mse": 0.5},
        {"digest": "c", "bits": 3.0, "mse": 0.8},   # dominated by b
        {"digest": "d", "bits": 5.0, "mse": 0.6},   # dominated by b
        {"digest": "e", "bits": 6.0, "mse": 0.1},
        {"digest": "f", "bits": 1.0, "mse": None},  # non-numeric: excluded
    ]

    def test_minimize_both(self):
        front = warehouse.pareto_front(self.ROWS, "bits", "mse")
        assert [row["digest"] for row in front] == ["a", "b", "e"]

    def test_maximize_axis(self):
        # In self.ROWS, "e" has both the lowest mse and the highest bits, so
        # maximizing bits collapses the frontier to it alone.
        front = warehouse.pareto_front(self.ROWS, "bits", "mse", maximize_x=True)
        assert [row["digest"] for row in front] == ["e"]
        # With a genuine trade-off, maximize keeps the accuracy-per-bit wins.
        rows = [
            {"digest": "lo", "bits": 2.0, "mse": 0.1},
            {"digest": "mid", "bits": 3.0, "mse": 0.5},  # dominated by "hi"
            {"digest": "hi", "bits": 4.0, "mse": 0.3},
        ]
        front = warehouse.pareto_front(rows, "bits", "mse", maximize_x=True)
        assert [row["digest"] for row in front] == ["hi", "lo"]

    def test_empty_and_all_excluded(self):
        assert warehouse.pareto_front([], "x", "y") == []
        assert warehouse.pareto_front([{"x": "text", "y": 1}], "x", "y") == []


class TestObservability:
    def test_ingest_and_query_record_metrics(self, conn, run_dir):
        from repro.obs.metrics import get_metrics

        registry = get_metrics()
        ingested = registry.counter(
            "repro_warehouse_ingested_total", labelnames=("outcome",)
        )
        before = ingested.value(outcome="inserted")
        warehouse.ingest_run_dir(conn, run_dir)
        assert ingested.value(outcome="inserted") == before + 4
        histogram = registry.histogram("repro_warehouse_query_seconds")
        count_before = histogram.count()
        warehouse.query_cells(conn)
        assert histogram.count() == count_before + 1
