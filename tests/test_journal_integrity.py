"""Journal integrity: per-record checksums, corruption quarantine, compaction.

Satellite of the chaos PR: a journal with mid-file garbage, a torn final
record, and a checksum-mismatched line must replay cleanly — the bad lines
quarantined (with reasons) into ``journal.quarantine.jsonl``, counted in
``repro_journal_quarantined_total``, and everything intact replayed.
"""

from __future__ import annotations

import json
import zlib

import pytest

from repro.chaos import FaultPlan, clear_plan, install_plan
from repro.obs.metrics import get_metrics
from repro.service import JobJournal, JobState, ResultCache, ScenarioRegistry, WorkerPool
from repro.service.journal import DEFAULT_KEEP_FINISHED, _checksummed_line
from repro.service.workers import job_digest


def make_registry(calls: list) -> ScenarioRegistry:
    registry = ScenarioRegistry()

    def echo(value=0):
        calls.append(value)
        return {"value": value}

    registry.add("echo", "echo the params", echo, {"value": 0})
    return registry


def make_pool(tmp_path, calls):
    journal = JobJournal(tmp_path)
    cache = ResultCache(max_entries=32, directory=tmp_path / "cache")
    pool = WorkerPool(make_registry(calls), cache=cache, max_workers=2, journal=journal)
    return pool, journal


def quarantine_reasons(tmp_path) -> list[str]:
    path = tmp_path / "journal.quarantine.jsonl"
    if not path.exists():
        return []
    return [json.loads(line)["reason"] for line in path.read_text().splitlines()]


class TestChecksums:
    def test_lines_carry_matching_crc32(self, tmp_path):
        pool, journal = make_pool(tmp_path, [])
        pool.run("echo", {"value": 1}, timeout=10)
        pool.shutdown()
        journal.close()
        for line in (tmp_path / "journal.jsonl").read_text().splitlines():
            record = json.loads(line)
            claimed = record.pop("crc32")
            payload = json.dumps(record, sort_keys=True, allow_nan=False)
            assert claimed == zlib.crc32(payload.encode()) & 0xFFFFFFFF

    def test_legacy_lines_without_crc_still_replay(self, tmp_path):
        # Journals written before checksumming carry no crc32 field; they
        # must replay as intact records, not as corruption.
        digest = job_digest("echo", {"value": 9})
        with (tmp_path / "journal.jsonl").open("w") as handle:
            handle.write(json.dumps({
                "event": "submit", "job_id": "job-000001", "type": "echo",
                "params": {"value": 9}, "digest": digest, "submitted_at": 0.0,
            }) + "\n")
        calls: list = []
        pool, journal = make_pool(tmp_path, calls)
        stats = journal.replay(pool)
        assert stats["replayed"] == 1 and stats["quarantined"] == 0
        job = pool.store.get("job-000001")
        assert job.wait(10) and job.result == {"value": 9}
        pool.shutdown()
        journal.close()


class TestCorruptionQuarantine:
    def corrupt_journal(self, tmp_path):
        """One finished job, then: garbage, a tampered record, a torn tail."""
        pool, journal = make_pool(tmp_path, [])
        done = pool.run("echo", {"value": 1}, timeout=10)
        pool.shutdown()
        journal.close()

        path = tmp_path / "journal.jsonl"
        lines = path.read_text().splitlines()
        # A checksum mismatch: a valid line whose payload was edited later.
        tampered = json.loads(lines[0])
        tampered["type"] = "tampered"
        with path.open("w") as handle:
            for line in lines:
                handle.write(line + "\n")
            handle.write("NOT JSON: disk says hello\n")
            handle.write(json.dumps(tampered) + "\n")
            handle.write('["not", "an", "object"]\n')
            handle.write('{"event": "submit", "job_id": "job-9')  # torn tail
        return done

    def test_corrupt_lines_are_quarantined_not_fatal(self, tmp_path):
        counter = get_metrics().counter(
            "repro_journal_quarantined_total", "", ("reason",)
        )
        before = {
            reason: counter.value(reason=reason)
            for reason in ("unparseable", "checksum_mismatch", "not_object", "truncated")
        }
        done = self.corrupt_journal(tmp_path)

        calls: list = []
        pool, journal = make_pool(tmp_path, calls)
        stats = journal.replay(pool)
        pool.shutdown()

        assert stats["quarantined"] == 4 == journal.quarantined
        assert stats["replayed"] == 1
        replayed = pool.store.get(done.job_id)
        assert replayed.state is JobState.DONE and replayed.cache_hit
        assert calls == [], "an intact finished job must not recompute"

        reasons = quarantine_reasons(tmp_path)
        assert sorted(reasons) == [
            "checksum_mismatch", "not_object", "truncated", "unparseable"
        ]
        for reason in before:
            assert counter.value(reason=reason) == before[reason] + 1
        # The quarantine file preserves the bad lines verbatim for forensics.
        entries = [
            json.loads(line)
            for line in (tmp_path / "journal.quarantine.jsonl").read_text().splitlines()
        ]
        assert any(e["line"].startswith("NOT JSON") for e in entries)
        assert all(isinstance(e["offset"], int) for e in entries)
        journal.close()

    def test_truncated_tail_vs_mid_file_garbage_reasons(self, tmp_path):
        # Only the *final* line may be blamed on a crash; identical garbage
        # mid-file is bit rot and gets the harsher label.
        path = tmp_path / "journal.jsonl"
        with path.open("w") as handle:
            handle.write('{"event": "submit", "job_id": "job-1\n')  # mid-file
            handle.write(_checksummed_line({"event": "noop"}) + "\n")
            handle.write('{"event": "submit", "job_id": "job-2')  # torn tail
        journal = JobJournal(tmp_path)
        list(journal.records())
        journal.close()
        assert quarantine_reasons(tmp_path) == ["unparseable", "truncated"]


class TestChaosJournalAppend:
    def test_injected_append_failure_never_fails_the_job(self, tmp_path):
        install_plan(FaultPlan.from_spec(
            [{"point": "journal.append", "mode": "error", "exception": "OSError"}]
        ))
        try:
            pool, journal = make_pool(tmp_path, [])
            job = pool.run("echo", {"value": 3}, timeout=10)
            assert job.state is JobState.DONE
            assert journal.write_errors >= 2  # submit + finish both injected
            pool.shutdown()
            journal.close()
        finally:
            clear_plan()


class TestCompaction:
    def run_jobs(self, tmp_path, count):
        pool, journal = make_pool(tmp_path, [])
        jobs = [pool.run("echo", {"value": v}, timeout=10) for v in range(count)]
        pool.shutdown()
        return jobs, journal

    def test_compact_merges_and_drops_old_finished_jobs(self, tmp_path):
        jobs, journal = self.run_jobs(tmp_path, 5)
        stats = journal.compact(keep_finished=2)
        journal.close()
        assert stats["jobs"] == 5 and stats["kept_jobs"] == 2
        assert stats["dropped_finished"] == 3
        assert stats["bytes_after"] < stats["bytes_before"]

        # The survivors are the *newest* finished jobs, checksummed again.
        fresh = JobJournal(tmp_path)
        records = list(fresh.records())
        fresh.close()
        assert fresh.quarantined == 0
        kept_ids = {r["job_id"] for r in records}
        assert kept_ids == {jobs[-1].job_id, jobs[-2].job_id}
        assert all("crc32" not in r for r in records)  # popped by verification

    def test_replay_after_compact_serves_kept_jobs(self, tmp_path):
        jobs, journal = self.run_jobs(tmp_path, 3)
        journal.compact(keep_finished=DEFAULT_KEEP_FINISHED)
        journal.close()

        calls: list = []
        pool, journal2 = make_pool(tmp_path, calls)
        stats = journal2.replay(pool)
        assert stats["completed"] == 3 and calls == []
        for job in jobs:
            assert pool.store.get(job.job_id).state is JobState.DONE
        pool.shutdown()
        journal2.close()

    def test_unfinished_jobs_survive_compaction(self, tmp_path):
        journal = JobJournal(tmp_path)
        journal.record(
            "submit", job_id="job-000042", type="echo", params={"value": 7},
            digest=job_digest("echo", {"value": 7}), submitted_at=0.0,
        )
        stats = journal.compact(keep_finished=0)
        assert stats["kept_jobs"] == 1 and stats["dropped_finished"] == 0
        # The journal stays appendable after the atomic swap.
        journal.record("done", job_id="job-000042", digest="d", cache_hit=False)
        journal.close()
        events = [
            json.loads(line)["event"]
            for line in (tmp_path / "journal.jsonl").read_text().splitlines()
        ]
        assert events == ["submit", "done"]

    def test_negative_keep_finished_rejected(self, tmp_path):
        journal = JobJournal(tmp_path)
        with pytest.raises(ValueError, match="keep_finished"):
            journal.compact(keep_finished=-1)
        journal.close()


class TestJournalCli:
    def test_compact_command_round_trip(self, tmp_path, capsys):
        from repro.cli import main

        pool, journal = make_pool(tmp_path, [])
        for value in range(4):
            pool.run("echo", {"value": value}, timeout=10)
        pool.shutdown()
        journal.close()

        assert main(["journal", "compact", str(tmp_path),
                     "--keep-finished", "1", "--json"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["kept_jobs"] == 1 and stats["dropped_finished"] == 3

    def test_missing_journal_is_an_error(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["journal", "compact", str(tmp_path / "nope")]) == 1
        assert "no journal" in capsys.readouterr().err
