"""Tests for rounded averaging and zero-point shifting (Figures 4/5, Algo. 1)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bitplane import int_range
from repro.core.encoding import PruningStrategy
from repro.core.rounded_average import rounded_average_group, rounded_average_groups
from repro.core.zero_point_shift import zero_point_shift_group, zero_point_shift_groups


def truncation_mse(group: np.ndarray, columns: int) -> float:
    """MSE of naively zeroing the lowest `columns` bits (the dumbest pruning)."""
    block = 1 << columns
    truncated = (group // block) * block
    return float(np.mean((truncated - group) ** 2))


class TestRoundedAverageGroup:
    def test_paper_figure4_example(self):
        # Figure 4: group [-11, 20, -57, 13], target 4 sparse columns.
        group = np.array([-11, 20, -57, 13])
        pruned = rounded_average_group(group, 4)
        assert pruned.num_redundant == 1
        assert pruned.num_sparse == 3
        assert pruned.constant == 5
        assert list(pruned.values) == [-11, 21, -59, 13]

    def test_zero_columns_is_identity(self, fresh_rng):
        group = fresh_rng.integers(-128, 128, 32)
        pruned = rounded_average_group(group, 0)
        assert np.array_equal(pruned.values, group)
        assert pruned.num_pruned == 0

    def test_strategy_label(self, fresh_rng):
        pruned = rounded_average_group(fresh_rng.integers(-10, 10, 16), 2)
        assert pruned.strategy is PruningStrategy.ROUNDED_AVERAGE

    def test_low_bits_become_shared_constant(self, fresh_rng):
        group = fresh_rng.integers(-128, 128, 32)
        pruned = rounded_average_group(group, 3)
        k = pruned.num_sparse
        if k:
            low = np.mod(pruned.values, 1 << k)
            assert np.all(low == low[0])
            assert low[0] == pruned.constant

    def test_values_stay_in_word_range(self, fresh_rng):
        lo, hi = int_range(8)
        for _ in range(20):
            group = fresh_rng.integers(lo, hi + 1, 32)
            pruned = rounded_average_group(group, 4)
            assert pruned.values.min() >= lo
            assert pruned.values.max() <= hi

    def test_small_group_values_use_redundant_columns(self):
        # All values fit in 5 bits -> 3 redundant columns cover a 3-column target
        # with zero error.
        group = np.array([1, -2, 3, 15, -16, 7, 0, -9])
        pruned = rounded_average_group(group, 3)
        assert pruned.num_redundant == 3
        assert pruned.num_sparse == 0
        assert np.array_equal(pruned.values, group)

    def test_rejects_too_many_columns(self, fresh_rng):
        with pytest.raises(ValueError):
            rounded_average_group(fresh_rng.integers(-10, 10, 8), 7)

    def test_rejects_2d_group(self):
        with pytest.raises(ValueError):
            rounded_average_group(np.zeros((2, 4), dtype=np.int64), 2)

    def test_batch_matches_single(self, fresh_rng):
        groups = fresh_rng.integers(-128, 128, (20, 32))
        values, redundant, sparse, constants = rounded_average_groups(groups, 3)
        for i in range(20):
            single = rounded_average_group(groups[i], 3)
            assert np.array_equal(values[i], single.values)
            assert redundant[i] == single.num_redundant
            assert sparse[i] == single.num_sparse
            assert constants[i] == single.constant

    @given(st.lists(st.integers(-128, 127), min_size=4, max_size=32), st.integers(1, 6))
    @settings(max_examples=80, deadline=None)
    def test_error_bounded_by_block_property(self, values, columns):
        group = np.array(values)
        pruned = rounded_average_group(group, columns)
        k = pruned.num_sparse
        # Per-element error is bounded by the averaged block span.
        assert np.max(np.abs(pruned.values - group)) <= (1 << k) - 1 if k else True
        lo, hi = int_range(8)
        assert pruned.values.min() >= lo and pruned.values.max() <= hi


class TestZeroPointShiftGroup:
    def test_paper_figure5_example_error(self):
        # Figure 5: group [-7, 1, -20, 81], 4 sparse columns.  The optimizer
        # must do at least as well as the constant -14 the paper illustrates.
        group = np.array([-7, 1, -20, 81])
        paper_actual = np.array([-2, -2, -18, 78])
        paper_mse = float(np.mean((paper_actual - group) ** 2))
        pruned = zero_point_shift_group(group, 4)
        our_mse = float(np.mean((pruned.values - group) ** 2))
        assert our_mse <= paper_mse + 1e-9
        assert pruned.num_pruned == 4

    def test_zero_columns_is_identity(self, fresh_rng):
        group = fresh_rng.integers(-128, 128, 32)
        pruned = zero_point_shift_group(group, 0)
        assert np.array_equal(pruned.values, group)

    def test_constant_within_6_bit_range(self, fresh_rng):
        for _ in range(20):
            pruned = zero_point_shift_group(fresh_rng.integers(-128, 128, 32), 4)
            assert -32 <= pruned.constant <= 31

    def test_shifted_values_have_zero_low_columns(self, fresh_rng):
        for _ in range(20):
            pruned = zero_point_shift_group(fresh_rng.integers(-128, 128, 32), 4)
            shifted = pruned.values + pruned.constant
            if pruned.num_sparse:
                assert np.all(np.mod(shifted, 1 << pruned.num_sparse) == 0)

    def test_never_worse_than_truncation(self, fresh_rng):
        for _ in range(30):
            group = fresh_rng.integers(-128, 128, 32)
            pruned = zero_point_shift_group(group, 4)
            our_mse = float(np.mean((pruned.values - group) ** 2))
            assert our_mse <= truncation_mse(group, 4) + 1e-9

    def test_batch_matches_single(self, fresh_rng):
        groups = fresh_rng.integers(-128, 128, (10, 32))
        values, redundant, sparse, constants = zero_point_shift_groups(groups, 4)
        for i in range(10):
            single = zero_point_shift_group(groups[i], 4)
            assert np.array_equal(values[i], single.values)
            assert constants[i] == single.constant

    def test_rejects_bad_columns(self, fresh_rng):
        with pytest.raises(ValueError):
            zero_point_shift_group(fresh_rng.integers(-10, 10, 8), 7)
        with pytest.raises(ValueError):
            zero_point_shift_group(fresh_rng.integers(-10, 10, 8), -1)

    def test_rejects_3d_input(self):
        with pytest.raises(ValueError):
            zero_point_shift_groups(np.zeros((2, 2, 4), dtype=np.int64), 2)

    @given(st.lists(st.integers(-128, 127), min_size=4, max_size=32), st.integers(1, 6))
    @settings(max_examples=60, deadline=None)
    def test_decoded_values_stay_in_word_range_property(self, values, columns):
        group = np.array(values)
        pruned = zero_point_shift_group(group, columns)
        lo, hi = int_range(8)
        assert pruned.values.min() >= lo
        assert pruned.values.max() <= hi

    def test_not_worse_than_rounded_average_at_four_columns_property(self):
        # The paper's rationale for zero-point shifting: at eager pruning
        # budgets it achieves lower error than rounded averaging.  The claim
        # is distributional, not pointwise — adversarial groups exist where
        # rounded averaging wins (e.g. [-1]*6 + [59, -59]) — so compare the
        # mean error over an ensemble of Gaussian weight groups.
        generator = np.random.default_rng(2024)
        zps_errors, ra_errors = [], []
        for _ in range(300):
            group = np.clip(
                np.round(generator.normal(0.0, 24.0, size=32)), -128, 127
            ).astype(np.int64)
            zps = zero_point_shift_group(group, 4)
            ra = rounded_average_group(group, 4)
            zps_errors.append(float(np.mean((zps.values - group) ** 2)))
            ra_errors.append(float(np.mean((ra.values - group) ** 2)))
        assert np.mean(zps_errors) <= np.mean(ra_errors) + 1e-9


class TestStrategyComparison:
    def test_both_strategies_have_zero_error_when_columns_are_redundant(self):
        group = np.array([1, -2, 3, -4, 5, -6, 7, -8])  # fits in 5 bits
        for strategy in (rounded_average_group, zero_point_shift_group):
            pruned = strategy(group, 3)
            assert np.array_equal(pruned.values, group)

    def test_more_columns_never_decrease_error(self, fresh_rng):
        group = fresh_rng.integers(-128, 128, 32)
        previous = -1.0
        for columns in (1, 2, 3, 4, 5, 6):
            pruned = zero_point_shift_group(group, columns)
            error = float(np.mean((pruned.values - group) ** 2))
            assert error >= previous - 1e-9
            previous = error
