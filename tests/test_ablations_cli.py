"""Tests for the ablation studies and the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import EXPERIMENT_COMMANDS, main
from repro.eval.ablations import (
    beta_ablation,
    channel_alignment_ablation,
    constant_bits_ablation,
    group_size_ablation,
    sub_group_ablation,
)


class TestGroupSizeAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return group_size_ablation(group_sizes=(8, 32, 128), num_columns=4)

    def test_metadata_amortizes_with_group_size(self, result):
        rows = {row["group_size"]: row for row in result["rows"]}
        assert rows[8]["effective_bits"] > rows[32]["effective_bits"] > rows[128]["effective_bits"]
        # The limit is 8 - 4 = 4 bits/weight.
        assert rows[128]["effective_bits"] > 4.0

    def test_error_grows_with_group_size(self, result):
        rows = {row["group_size"]: row for row in result["rows"]}
        assert rows[8]["mse"] <= rows[128]["mse"] + 1e-9

    def test_paper_choice_is_balanced(self, result):
        rows = {row["group_size"]: row for row in result["rows"]}
        # Group 32 keeps the effective bits within 0.3 of the 4-bit asymptote
        # (group 8 wastes a full extra bit on metadata) while its error stays
        # well below the largest group's regime.
        assert rows[32]["effective_bits"] - 4.0 < 0.3
        assert rows[8]["effective_bits"] - 4.0 >= 0.9
        assert rows[32]["mse"] < rows[128]["mse"]


class TestConstantBitsAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return constant_bits_ablation(constant_bits=(2, 4, 6, 7))

    def test_error_monotonically_non_increasing(self, result):
        errors = [row["mse"] for row in result["rows"]]
        assert all(errors[i + 1] <= errors[i] + 1e-9 for i in range(len(errors) - 1))

    def test_six_bits_is_near_saturation(self, result):
        rows = {row["constant_bits"]: row for row in result["rows"]}
        # Going from 6 to 7 bits buys almost nothing (the paper's rationale).
        assert rows[7]["mse"] >= 0.98 * rows[6]["mse"]
        # Going from 2 to 6 bits helps measurably.
        assert rows[6]["mse"] <= rows[2]["mse"]


class TestBetaAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return beta_ablation(betas=(0.0, 0.10, 0.40))

    def test_more_sensitive_channels_mean_less_error_more_bits(self, result):
        rows = {row["beta"]: row for row in result["rows"]}
        assert rows[0.40]["mse"] <= rows[0.0]["mse"]
        assert rows[0.40]["effective_bits"] >= rows[0.0]["effective_bits"]

    def test_sensitive_fraction_at_least_beta(self, result):
        for row in result["rows"]:
            assert row["sensitive_fraction"] >= row["beta"] - 1e-9


class TestSubGroupAblation:
    def test_sub_group_8_optimized_minimizes_area(self):
        rows = sub_group_ablation(sub_groups=(16, 8, 4, 2))["rows"]
        optimized = {row["sub_group"]: row for row in rows if row["optimized"]}
        assert min(optimized, key=lambda k: optimized[k]["area_um2"]) == 8

    def test_optimization_always_reduces_area(self):
        rows = sub_group_ablation(sub_groups=(16, 8))["rows"]
        by_config = {(row["sub_group"], row["optimized"]): row for row in rows}
        for sub_group in (16, 8):
            assert (
                by_config[(sub_group, True)]["area_um2"]
                < by_config[(sub_group, False)]["area_um2"]
            )


class TestChannelAlignmentAblation:
    def test_narrow_layers_pay_more_overhead(self):
        rows = channel_alignment_ablation(layer_widths=(32, 2048))["rows"]
        by_width = {row["layer_channels"]: row for row in rows}
        assert by_width[32]["overhead"] >= by_width[2048]["overhead"]

    def test_aligned_fraction_never_below_unaligned(self):
        for row in channel_alignment_ablation()["rows"]:
            assert row["aligned_fraction"] >= row["unaligned_fraction"] - 1e-9


class TestCli:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "figure12" in output and "ablations" in output

    def test_every_experiment_registered(self):
        assert len(EXPERIMENT_COMMANDS) == 16  # 10 figures + 6 tables

    def test_table5_command(self, capsys):
        assert main(["table5"]) == 0
        output = capsys.readouterr().out
        assert "BitVert" in output and "regenerated" in output

    def test_figure3_command_with_model_subset(self, capsys):
        assert main(["figure3", "--models", "ViT-Small"]) == 0
        output = capsys.readouterr().out
        assert "ViT-Small" in output

    def test_unknown_command_fails(self):
        with pytest.raises(SystemExit):
            main(["figure99"])

    def test_missing_command_fails(self):
        with pytest.raises(SystemExit):
            main([])
