"""Tests for hardware-aware global binary pruning (Algorithm 2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.encoding import PruningStrategy
from repro.core.global_pruning import (
    CONSERVATIVE_PRESET,
    MODERATE_PRESET,
    PruningPreset,
    global_binary_prune,
    select_sensitive_channels,
)


@pytest.fixture(scope="module")
def two_layer_model():
    rng = np.random.default_rng(11)
    layers = {
        "conv1": np.clip(np.round(rng.normal(0, 20, (64, 128))), -128, 127).astype(np.int64),
        "conv2": np.clip(np.round(rng.normal(0, 30, (96, 256))), -128, 127).astype(np.int64),
    }
    scores = {name: np.abs(values).max(axis=1).astype(float) for name, values in layers.items()}
    return layers, scores


class TestPresets:
    def test_conservative(self):
        assert CONSERVATIVE_PRESET.beta == 0.10
        assert CONSERVATIVE_PRESET.num_columns == 2
        assert CONSERVATIVE_PRESET.strategy is PruningStrategy.ROUNDED_AVERAGE

    def test_moderate(self):
        assert MODERATE_PRESET.beta == 0.20
        assert MODERATE_PRESET.num_columns == 4
        assert MODERATE_PRESET.strategy is PruningStrategy.ZERO_POINT_SHIFT

    def test_describe(self):
        text = MODERATE_PRESET.describe()
        assert "20%" in text and "zero_point_shift" in text


class TestSensitiveChannelSelection:
    def test_beta_zero_selects_nothing(self, two_layer_model):
        _, scores = two_layer_model
        masks = select_sensitive_channels(scores, beta=0.0)
        assert all(mask.sum() == 0 for mask in masks.values())

    def test_beta_one_selects_everything(self, two_layer_model):
        _, scores = two_layer_model
        masks = select_sensitive_channels(scores, beta=1.0)
        assert all(mask.all() for mask in masks.values())

    def test_counts_are_multiples_of_ch(self, two_layer_model):
        _, scores = two_layer_model
        masks = select_sensitive_channels(scores, beta=0.2, channel_parallelism=32)
        for name, mask in masks.items():
            count = int(mask.sum())
            assert count % 32 == 0 or count == scores[name].size

    def test_global_fraction_at_least_beta(self, two_layer_model):
        _, scores = two_layer_model
        beta = 0.2
        masks = select_sensitive_channels(scores, beta=beta, channel_parallelism=32)
        total = sum(score.size for score in scores.values())
        selected = sum(int(mask.sum()) for mask in masks.values())
        assert selected >= beta * total

    def test_highest_scores_selected(self, two_layer_model):
        _, scores = two_layer_model
        masks = select_sensitive_channels(scores, beta=0.2, channel_parallelism=1)
        for name, mask in masks.items():
            if mask.any() and not mask.all():
                selected_min = scores[name][mask].min()
                unselected_max = scores[name][~mask].max()
                assert selected_min >= unselected_max

    def test_invalid_beta(self, two_layer_model):
        _, scores = two_layer_model
        with pytest.raises(ValueError):
            select_sensitive_channels(scores, beta=1.5)

    def test_invalid_ch(self, two_layer_model):
        _, scores = two_layer_model
        with pytest.raises(ValueError):
            select_sensitive_channels(scores, beta=0.1, channel_parallelism=0)

    def test_empty_input(self):
        assert select_sensitive_channels({}, beta=0.1) == {}


class TestGlobalBinaryPrune:
    def test_moderate_preset_end_to_end(self, two_layer_model):
        layers, scores = two_layer_model
        result = global_binary_prune(layers, scores, MODERATE_PRESET)
        assert set(result.pruned_layers) == set(layers)
        assert result.compression_ratio() > 1.3
        assert 4.0 < result.effective_bits() < 8.0
        assert result.sensitive_fraction() >= MODERATE_PRESET.beta

    def test_conservative_compresses_less_but_more_accurately(self, two_layer_model):
        layers, scores = two_layer_model
        conservative = global_binary_prune(layers, scores, CONSERVATIVE_PRESET)
        moderate = global_binary_prune(layers, scores, MODERATE_PRESET)
        assert conservative.effective_bits() > moderate.effective_bits()
        assert conservative.mean_mse() <= moderate.mean_mse()
        assert conservative.compression_ratio() < moderate.compression_ratio()

    def test_sensitive_channels_unchanged(self, two_layer_model):
        layers, scores = two_layer_model
        result = global_binary_prune(layers, scores, MODERATE_PRESET)
        for name, pruned in result.pruned_layers.items():
            mask = result.sensitive_masks[name]
            assert np.array_equal(pruned.values[mask], layers[name][mask])

    def test_missing_scores_raise(self, two_layer_model):
        layers, scores = two_layer_model
        with pytest.raises(ValueError):
            global_binary_prune(layers, {"conv1": scores["conv1"]}, MODERATE_PRESET)

    def test_mismatched_score_length_raises(self, two_layer_model):
        layers, scores = two_layer_model
        bad = dict(scores)
        bad["conv1"] = bad["conv1"][:-1]
        with pytest.raises(ValueError):
            global_binary_prune(layers, bad, MODERATE_PRESET)

    def test_custom_preset(self, two_layer_model):
        layers, scores = two_layer_model
        preset = PruningPreset("custom", 0.0, 6, PruningStrategy.ZERO_POINT_SHIFT)
        result = global_binary_prune(layers, scores, preset)
        assert result.effective_bits() == pytest.approx((2 * 32 + 8) / 32)

    def test_memory_footprint_reduction_matches_paper_ballpark(self, two_layer_model):
        # Paper: conservative -> 1.29x, moderate -> 1.66x average compression.
        layers, scores = two_layer_model
        conservative = global_binary_prune(layers, scores, CONSERVATIVE_PRESET)
        moderate = global_binary_prune(layers, scores, MODERATE_PRESET)
        assert 1.1 < conservative.compression_ratio() < 1.35
        assert 1.4 < moderate.compression_ratio() < 1.95
