"""End-to-end tests of the HTTP/JSON API against a server on an ephemeral port."""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.service import ResultCache, build_default_registry, create_server


@pytest.fixture(scope="module")
def server():
    server = create_server(port=0, registry=build_default_registry(),
                           cache=ResultCache(max_entries=32), max_workers=2)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server
    server.close()
    thread.join(timeout=10)


@pytest.fixture(scope="module")
def base(server):
    return f"http://127.0.0.1:{server.port}"


def get(base: str, path: str) -> tuple[int, dict]:
    try:
        with urllib.request.urlopen(base + path) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def post(base: str, path: str, payload) -> tuple[int, dict]:
    request = urllib.request.Request(
        base + path,
        data=json.dumps(payload).encode("utf-8") if not isinstance(payload, bytes) else payload,
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


#: A small compression job used throughout (fast: < a second cold).
PRUNE_JOB = {"type": "prune_tensor", "params": {"rows": 64, "cols": 256, "num_columns": 4}}


class TestInfrastructureEndpoints:
    def test_health(self, base):
        status, payload = get(base, "/health")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["scenarios"] >= 20
        assert payload["pool"]["workers"] == 2

    def test_scenarios_lists_experiments_and_adhoc_jobs(self, base):
        status, payload = get(base, "/scenarios")
        assert status == 200
        names = {entry["name"] for entry in payload["scenarios"]}
        assert {"figure1", "figure12", "table6", "ablations", "suite",
                "prune_tensor", "simulate"} <= names

    def test_cache_stats_shape(self, base):
        status, payload = get(base, "/cache/stats")
        assert status == 200
        for key in ("entries", "max_entries", "hits", "misses", "evictions", "hit_rate"):
            assert key in payload

    def test_unknown_paths_are_404(self, base):
        assert get(base, "/nope")[0] == 404
        assert get(base, "/jobs/job-999999")[0] == 404
        assert post(base, "/nope", {})[0] == 404


class TestJobSubmission:
    def test_round_trip_and_cache_hit(self, base):
        # Cold submission: wait for completion server-side.
        status, first = post(base, "/jobs?wait=120", PRUNE_JOB)
        assert status == 200
        assert first["state"] == "done" and not first["cache_hit"]
        assert first["result"]["compression_ratio"] > 1.0

        # Identical job again: identical result, served from cache.
        status, second = post(base, "/jobs?wait=120", PRUNE_JOB)
        assert status == 200
        assert second["state"] == "done" and second["cache_hit"]
        assert second["job_id"] != first["job_id"]
        assert second["result"] == first["result"]

        status, stats = get(base, "/cache/stats")
        assert stats["hits"] >= 1

    def test_poll_and_fetch_result(self, base):
        job = {"type": "prune_tensor", "params": {"rows": 32, "cols": 128}}
        status, submitted = post(base, "/jobs", job)
        assert status in (200, 202)
        assert "result" not in submitted or submitted["state"] == "done"
        job_id = submitted["job_id"]

        deadline = 120
        import time

        start = time.perf_counter()
        while True:
            status, polled = get(base, f"/jobs/{job_id}")
            assert status == 200
            if polled["state"] in ("done", "failed"):
                break
            assert time.perf_counter() - start < deadline
            time.sleep(0.02)
        assert polled["state"] == "done"
        assert "result" not in polled  # status endpoint stays lightweight

        status, result = get(base, f"/jobs/{job_id}/result")
        assert status == 200
        assert result["result"]["shape"] == [32, 128]

    def test_result_of_unfinished_job_is_409(self, base):
        # figure1 takes ~a second cold, far longer than the immediate poll.
        status, submitted = post(base, "/jobs", {"type": "figure1", "params": {"seed": 1}})
        assert status in (200, 202)
        status, payload = get(base, f"/jobs/{submitted['job_id']}/result")
        if payload.get("state") in ("queued", "running"):
            assert status == 409
        else:
            assert status == 200
        # Let it finish so module teardown does not wait on the pool.
        assert self._wait_done(base, submitted["job_id"])

    @staticmethod
    def _wait_done(base, job_id, deadline=120.0):
        import time

        start = time.perf_counter()
        while time.perf_counter() - start < deadline:
            _, payload = get(base, f"/jobs/{job_id}")
            if payload["state"] in ("done", "failed"):
                return True
            time.sleep(0.05)
        return False

    def test_jobs_listing_contains_submissions(self, base):
        status, payload = get(base, "/jobs")
        assert status == 200
        assert len(payload["jobs"]) >= 2
        assert all("result" not in job for job in payload["jobs"])

    def test_failed_job_reports_error(self, base):
        bad = {"type": "prune_tensor", "params": {"rows": -1, "cols": 16}}
        status, payload = post(base, "/jobs?wait=120", bad)
        assert status == 200
        assert payload["state"] == "failed"
        assert "must be positive" in payload["error"]

    def test_bad_requests_are_400(self, base):
        assert post(base, "/jobs", {"params": {}})[0] == 400
        assert post(base, "/jobs", {"type": "no-such-job"})[0] == 400
        assert post(base, "/jobs", {"type": "figure1", "params": []})[0] == 400
        assert post(base, "/jobs", b"{not json")[0] == 400
        assert post(base, "/jobs", b"")[0] == 400

    def test_invalid_wait_is_400_and_submits_nothing(self, base):
        before = len(get(base, "/jobs")[1]["jobs"])
        assert post(base, "/jobs?wait=1O", PRUNE_JOB)[0] == 400  # letter O typo
        assert post(base, "/jobs?wait=nan", PRUNE_JOB)[0] == 400
        assert len(get(base, "/jobs")[1]["jobs"]) == before

    def test_keepalive_connection_survives_posted_body_to_404(self, server):
        # The 404 handler must drain the body, or the unread bytes corrupt
        # the next request on this persistent connection.
        import http.client

        connection = http.client.HTTPConnection("127.0.0.1", server.port, timeout=10)
        try:
            payload = json.dumps(PRUNE_JOB)
            connection.request("POST", "/wrong/path", body=payload,
                               headers={"Content-Type": "application/json"})
            response = connection.getresponse()
            assert response.status == 404
            response.read()
            connection.request("GET", "/health")
            response = connection.getresponse()
            assert response.status == 200
            assert json.loads(response.read())["status"] == "ok"
        finally:
            connection.close()


#: A 2-cell campaign: fast enough for a synchronous ?wait= round trip.
CAMPAIGN_SPEC = {
    "name": "http-campaign",
    "grids": [
        {
            "name": "quant",
            "scenario": "quantize_tensor",
            "params": {"rows": 16, "cols": 64, "backend": "ptq"},
            "sweep": {"bits": [6, 8]},
        }
    ],
}


class TestCampaignEndpoint:
    def test_post_campaign_runs_to_aggregate_report(self, base):
        status, payload = post(
            base, "/campaign?wait=120", {"spec": CAMPAIGN_SPEC, "jobs": 2}
        )
        assert status == 200
        assert payload["state"] == "done"
        report = payload["result"]
        assert report["campaign"] == "http-campaign"
        assert report["total_cells"] == 2
        assert [cell["cell"] for cell in report["cells"]] == ["quant/0", "quant/1"]
        assert all(cell["digest"] for cell in report["cells"])

    def test_post_campaign_accepts_bare_spec_body(self, base):
        status, payload = post(base, "/campaign?wait=120", CAMPAIGN_SPEC)
        assert status == 200
        # Same wrapped job => the result cache serves the repeat instantly.
        assert payload["result"]["spec_digest"]

    def test_invalid_specs_and_fields_are_400(self, base):
        assert post(base, "/campaign", {"spec": {"name": "x"}})[0] == 400
        assert post(base, "/campaign", {"spec": CAMPAIGN_SPEC, "jobs": 0})[0] == 400
        assert post(base, "/campaign", {"spec": CAMPAIGN_SPEC, "typo": 1})[0] == 400
        assert post(base, "/campaign", b"{not json")[0] == 400
        # Unknown scenarios and parameter typos fail the request, not the job.
        bad_scenario = json.loads(json.dumps(CAMPAIGN_SPEC))
        bad_scenario["grids"][0]["scenario"] = "no_such_scenario"
        status, payload = post(base, "/campaign", bad_scenario)
        assert status == 400 and "no_such_scenario" in payload["error"]
        bad_param = json.loads(json.dumps(CAMPAIGN_SPEC))
        bad_param["grids"][0]["sweep"]["typo_axis"] = [1]
        assert post(base, "/campaign", bad_param)[0] == 400
