"""Tests for the BBS compression encoding (encode/decode, metadata, sizes)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.encoding import (
    CONSTANT_FIELD_BITS,
    EncodedGroup,
    MAX_PRUNED_COLUMNS,
    MAX_REDUNDANT_COLUMNS,
    METADATA_BITS,
    PrunedGroup,
    PruningStrategy,
    decode_group,
    effective_bits_per_weight,
    encode_group,
    group_storage_bits,
    natural_redundant_columns,
    unpruned_group,
)
from repro.core.rounded_average import rounded_average_group
from repro.core.zero_point_shift import zero_point_shift_group


class TestConstants:
    def test_metadata_is_one_byte(self):
        assert METADATA_BITS == 8

    def test_field_split(self):
        assert MAX_REDUNDANT_COLUMNS == 3
        assert CONSTANT_FIELD_BITS == 6
        assert MAX_PRUNED_COLUMNS == 6


class TestStorageBits:
    def test_uncompressed_group_has_no_metadata(self):
        assert group_storage_bits(32, 0) == 32 * 8

    def test_paper_moderate_setting(self):
        assert group_storage_bits(32, 4) == 32 * 4 + 8
        assert effective_bits_per_weight(32, 4) == pytest.approx(4.25)

    def test_paper_conservative_setting(self):
        assert effective_bits_per_weight(32, 2) == pytest.approx(6.25)

    def test_invalid_pruned_count(self):
        with pytest.raises(ValueError):
            group_storage_bits(32, 9)


class TestUnprunedGroup:
    def test_roundtrip(self):
        values = np.array([1, -2, 3, -4])
        group = unpruned_group(values)
        encoded = encode_group(group)
        assert np.array_equal(decode_group(encoded), values)
        assert encoded.stored_columns == 8

    def test_natural_redundancy(self):
        assert natural_redundant_columns(np.array([1, -2, 3, -4])) == 3
        assert natural_redundant_columns(np.array([100, -2])) == 0


class TestEncodeDecodeRoundtrip:
    @pytest.mark.parametrize("strategy", [PruningStrategy.ROUNDED_AVERAGE, PruningStrategy.ZERO_POINT_SHIFT])
    @pytest.mark.parametrize("columns", [0, 1, 2, 3, 4, 5, 6])
    def test_roundtrip_all_settings(self, strategy, columns, fresh_rng):
        for _ in range(5):
            group = fresh_rng.integers(-128, 128, 32)
            if strategy is PruningStrategy.ROUNDED_AVERAGE:
                pruned = rounded_average_group(group, columns)
            else:
                pruned = zero_point_shift_group(group, columns)
            encoded = encode_group(pruned)
            assert np.array_equal(decode_group(encoded), pruned.values)
            assert encoded.stored_columns == 8 - pruned.num_pruned

    def test_storage_bits_match_pruned_columns(self, fresh_rng):
        group = fresh_rng.integers(-128, 128, 32)
        pruned = zero_point_shift_group(group, 4)
        encoded = encode_group(pruned)
        assert encoded.storage_bits() == 32 * (8 - pruned.num_pruned) + METADATA_BITS
        assert pruned.storage_bits() == encoded.storage_bits()

    @given(
        st.lists(st.integers(-128, 127), min_size=8, max_size=8),
        st.integers(0, 4),
    )
    @settings(max_examples=80, deadline=None)
    def test_roundtrip_property(self, values, columns):
        group = np.array(values)
        for pruned in (
            rounded_average_group(group, columns),
            zero_point_shift_group(group, columns),
        ):
            encoded = encode_group(pruned)
            assert np.array_equal(decode_group(encoded), pruned.values)


class TestMetadataWord:
    def test_layout(self, fresh_rng):
        group = fresh_rng.integers(-40, 40, 32)
        pruned = zero_point_shift_group(group, 4)
        encoded = encode_group(pruned)
        word = encoded.metadata_word()
        assert 0 <= word < 256
        assert word >> CONSTANT_FIELD_BITS == pruned.num_redundant
        constant_field = word & ((1 << CONSTANT_FIELD_BITS) - 1)
        # The constant field is the 6-bit two's complement of the constant.
        expected = pruned.constant & ((1 << CONSTANT_FIELD_BITS) - 1)
        assert constant_field == expected


class TestValidation:
    def test_rejects_too_many_pruned_columns(self):
        values = np.zeros(8, dtype=np.int64)
        bad = PrunedGroup(values, num_redundant=3, num_sparse=5, constant=0,
                          strategy=PruningStrategy.ROUNDED_AVERAGE)
        with pytest.raises(ValueError):
            encode_group(bad)

    def test_rejects_too_many_redundant(self):
        values = np.zeros(8, dtype=np.int64)
        bad = PrunedGroup(values, num_redundant=4, num_sparse=0, constant=0,
                          strategy=PruningStrategy.ROUNDED_AVERAGE)
        with pytest.raises(ValueError):
            encode_group(bad)

    def test_rejects_values_that_do_not_fit_reduced_width(self):
        values = np.array([120, -120])
        bad = PrunedGroup(values, num_redundant=2, num_sparse=0, constant=0,
                          strategy=PruningStrategy.NONE)
        with pytest.raises(ValueError):
            encode_group(bad)

    def test_rejects_inconsistent_low_columns(self):
        # Claims 2 sparse zero columns but the values have low bits set.
        values = np.array([3, 5, 7, 9])
        bad = PrunedGroup(values, num_redundant=0, num_sparse=2, constant=0,
                          strategy=PruningStrategy.ZERO_POINT_SHIFT)
        with pytest.raises(ValueError):
            encode_group(bad)

    def test_rejects_sparse_columns_without_strategy(self):
        values = np.array([4, 8, 12, 16])
        bad = PrunedGroup(values, num_redundant=0, num_sparse=2, constant=0,
                          strategy=PruningStrategy.NONE)
        with pytest.raises(ValueError):
            encode_group(bad)

    def test_decode_rejects_wrong_column_count(self, fresh_rng):
        group = fresh_rng.integers(-40, 40, 16)
        pruned = rounded_average_group(group, 2)
        encoded = encode_group(pruned)
        corrupted = EncodedGroup(
            stored_planes=encoded.stored_planes[:, :-1],
            num_redundant=encoded.num_redundant,
            num_sparse=encoded.num_sparse,
            constant=encoded.constant,
            strategy=encoded.strategy,
        )
        with pytest.raises(ValueError):
            decode_group(corrupted)
