"""Tests for the SRAM/DRAM models and the tiling/traffic analysis."""

from __future__ import annotations

import pytest

from repro.memory.dram import DEFAULT_DRAM, DramModel
from repro.memory.hierarchy import MemorySystem
from repro.memory.sram import (
    DEFAULT_ACTIVATION_BUFFER,
    DEFAULT_WEIGHT_BUFFER,
    SramBuffer,
    buffer_fit_fraction,
)
from repro.nn.workloads import GemmWorkload


class TestSram:
    def test_default_buffers_are_256kb(self):
        assert DEFAULT_ACTIVATION_BUFFER.capacity_bytes == 256 * 1024
        assert DEFAULT_WEIGHT_BUFFER.capacity_bytes == 256 * 1024

    def test_energy_grows_with_capacity(self):
        small = SramBuffer("small", 32 * 1024)
        large = SramBuffer("large", 512 * 1024)
        assert large.read_energy_per_byte_pj() > small.read_energy_per_byte_pj()

    def test_write_costs_more_than_read(self):
        buffer = DEFAULT_WEIGHT_BUFFER
        assert buffer.write_energy_per_byte_pj() > buffer.read_energy_per_byte_pj()

    def test_access_energy_linear_in_bytes(self):
        buffer = DEFAULT_WEIGHT_BUFFER
        assert buffer.access_energy_pj(2000) == pytest.approx(2 * buffer.access_energy_pj(1000))

    def test_access_energy_rejects_negative(self):
        with pytest.raises(ValueError):
            DEFAULT_WEIGHT_BUFFER.access_energy_pj(-1)

    def test_area_positive_and_monotone(self):
        assert SramBuffer("a", 64 * 1024).area_mm2() < SramBuffer("b", 512 * 1024).area_mm2()

    def test_scaled_copy(self):
        scaled = DEFAULT_WEIGHT_BUFFER.scaled(64 * 1024)
        assert scaled.capacity_bytes == 64 * 1024
        assert scaled.name == DEFAULT_WEIGHT_BUFFER.name

    def test_fit_fraction(self):
        buffer = SramBuffer("b", 1024)
        assert buffer_fit_fraction(buffer, 512) == 1.0
        assert buffer_fit_fraction(buffer, 2048) == 0.5
        assert buffer_fit_fraction(buffer, 0) == 1.0

    def test_reasonable_absolute_energy(self):
        # A 256 KB SRAM read should cost on the order of 1 pJ/byte at 28 nm.
        assert 0.5 < DEFAULT_WEIGHT_BUFFER.read_energy_per_byte_pj() < 3.0


class TestDram:
    def test_energy_per_byte(self):
        assert DEFAULT_DRAM.access_energy_pj(100) == pytest.approx(100 * DEFAULT_DRAM.energy_per_byte_pj)

    def test_dram_much_more_expensive_than_sram(self):
        assert DEFAULT_DRAM.energy_per_byte_pj > 20 * DEFAULT_WEIGHT_BUFFER.read_energy_per_byte_pj()

    def test_transfer_cycles(self):
        dram = DramModel(bandwidth_gb_per_s=12.8)
        # 12.8 GB/s at 0.8 GHz = 16 bytes per cycle.
        assert dram.transfer_cycles(1600, clock_ghz=0.8) == pytest.approx(100.0)

    def test_rejects_negative_bytes(self):
        with pytest.raises(ValueError):
            DEFAULT_DRAM.access_energy_pj(-5)
        with pytest.raises(ValueError):
            DEFAULT_DRAM.transfer_cycles(-5, 0.8)

    def test_rejects_bad_clock(self):
        with pytest.raises(ValueError):
            DEFAULT_DRAM.transfer_cycles(100, 0.0)


class TestMemorySystem:
    @pytest.fixture()
    def system(self) -> MemorySystem:
        return MemorySystem()

    def test_small_layer_fetched_once(self, system):
        workload = GemmWorkload("small", m=196, k=1024, n=64)
        traffic = system.layer_traffic(workload)
        assert traffic.dram_weight_bytes == workload.weight_bytes
        assert traffic.dram_activation_bytes == workload.activation_bytes

    def test_compressed_weights_reduce_traffic(self, system):
        workload = GemmWorkload("fc", m=197, k=768, n=3072)
        dense = system.layer_traffic(workload)
        compressed = system.layer_traffic(workload, stored_weight_bytes=workload.weight_bytes / 2)
        assert compressed.dram_weight_bytes < dense.dram_weight_bytes
        assert compressed.dram_total_bytes < dense.dram_total_bytes

    def test_huge_layer_incurs_refetch(self, system):
        # Neither the 4 MB weights nor the 4 MB activations fit in 256 KB.
        workload = GemmWorkload("huge", m=4096, k=1024, n=4096)
        traffic = system.layer_traffic(workload)
        assert traffic.dram_total_bytes > workload.weight_bytes + workload.activation_bytes

    def test_metadata_charged(self, system):
        workload = GemmWorkload("fc", m=10, k=512, n=128)
        base = system.layer_traffic(workload)
        with_meta = system.layer_traffic(workload, metadata_bytes=4096)
        assert with_meta.dram_weight_bytes == base.dram_weight_bytes + 4096

    def test_lower_activation_precision_reduces_traffic(self, system):
        workload = GemmWorkload("fc", m=512, k=1024, n=1024)
        int8 = system.layer_traffic(workload)
        int6 = system.layer_traffic(workload, activation_bits=6)
        assert int6.dram_activation_bytes < int8.dram_activation_bytes

    def test_energy_split(self, system):
        workload = GemmWorkload("fc", m=197, k=768, n=768)
        traffic = system.layer_traffic(workload)
        dram_energy, sram_energy = system.traffic_energy_pj(traffic)
        assert dram_energy > 0 and sram_energy > 0
        assert dram_energy > sram_energy  # DRAM dominates per byte

    def test_dram_cycles_positive(self, system):
        workload = GemmWorkload("fc", m=197, k=768, n=768)
        traffic = system.layer_traffic(workload)
        assert system.dram_cycles(traffic) > 0

    def test_traffic_scaling(self, system):
        workload = GemmWorkload("fc", m=16, k=256, n=256)
        traffic = system.layer_traffic(workload)
        doubled = traffic.scaled(2.0)
        assert doubled.dram_total_bytes == pytest.approx(2 * traffic.dram_total_bytes)
