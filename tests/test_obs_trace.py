"""Tests for repro.obs tracing: span mechanics, propagation, and the
end-to-end federated span tree.

The load-bearing assertion lives in :class:`TestFederatedSpanTree`: a
campaign cell dispatched to remote serve nodes yields ONE connected tree —
client cell span -> node HTTP span -> worker job span -> codec span ->
pipeline stage spans — queryable from ``stats["trace_id"]``.
"""

from __future__ import annotations

import threading

import pytest

from repro.campaign import parse_spec
from repro.campaign.dispatch import CampaignDispatcher
from repro.obs import trace as obs_trace
from repro.obs.trace import (
    TraceBuffer,
    TraceContext,
    TraceLog,
    build_span_tree,
    current_context,
    format_traceparent,
    get_recorder,
    parse_traceparent,
)
from repro.service import create_server
from repro.service.client import ServiceClient
from repro.service.registry import build_default_registry
from repro.service.workers import WorkerPool


# --------------------------------------------------------------------------- #
# Span and context mechanics
# --------------------------------------------------------------------------- #


class TestTraceparent:
    def test_round_trip(self):
        ctx = TraceContext(trace_id="ab" * 16, span_id="cd" * 8)
        assert parse_traceparent(format_traceparent(ctx)) == ctx

    @pytest.mark.parametrize(
        "value",
        [None, "", "garbage", "ab" * 16, f"{'ab' * 16}-short",
         f"{'zz' * 16}-{'cd' * 8}", f"{'ab' * 15}-{'cd' * 8}"],
    )
    def test_malformed_values_parse_to_none(self, value):
        assert parse_traceparent(value) is None

    def test_whitespace_and_case_tolerated(self):
        ctx = TraceContext(trace_id="ab" * 16, span_id="cd" * 8)
        assert parse_traceparent(f"  {format_traceparent(ctx).upper()}  ") == ctx


class TestSpans:
    def test_nesting_and_context_restore(self):
        assert current_context() is None
        with obs_trace.span("outer") as outer:
            assert current_context() == outer.context
            with obs_trace.span("inner") as inner:
                assert inner.trace_id == outer.trace_id
                assert inner.parent_id == outer.span_id
            assert current_context() == outer.context
        assert current_context() is None

    def test_exception_marks_error_and_propagates(self):
        with pytest.raises(ValueError):
            with obs_trace.span("failing") as failing:
                raise ValueError("bad input")
        assert failing.status == "error"
        assert "ValueError: bad input" in failing.error
        assert current_context() is None

    def test_start_span_without_context_mints_trace(self):
        span = obs_trace.start_span("root")
        assert len(span.trace_id) == 32
        assert span.parent_id is None
        span.finish()

    def test_start_span_with_explicit_parent(self):
        parent = TraceContext(trace_id="ab" * 16, span_id="cd" * 8)
        span = obs_trace.start_span("child", parent=parent)
        assert span.trace_id == parent.trace_id
        assert span.parent_id == parent.span_id
        span.finish()

    def test_finish_is_idempotent_and_duration_overridable(self):
        span = obs_trace.start_span("once")
        span.finish(duration=42.0)
        span.finish(error="ignored: already finished")
        assert span.duration == 42.0
        assert span.status == "ok"

    def test_recorder_sees_finished_spans(self):
        with obs_trace.span("recorded", attrs={"k": "v"}) as span:
            pass
        records = get_recorder().buffer.spans_for_trace(span.trace_id)
        assert [r["name"] for r in records] == ["recorded"]
        assert records[0]["attrs"] == {"k": "v"}


class TestSinks:
    def test_buffer_is_a_ring(self):
        buffer = TraceBuffer(capacity=3)
        for index in range(5):
            buffer({"span_id": f"s{index}", "trace_id": "t"})
        assert [r["span_id"] for r in buffer.spans()] == ["s2", "s3", "s4"]

    def test_trace_log_round_trip_skips_torn_lines(self, tmp_path):
        log = TraceLog(tmp_path / "trace.jsonl")
        log({"span_id": "a", "trace_id": "t"})
        log({"span_id": "b", "trace_id": "t"})
        with log.path.open("a", encoding="utf-8") as handle:
            handle.write('{"span_id": "torn-by-cra')
        records = log.read()
        assert [r["span_id"] for r in records] == ["a", "b"]
        assert log.write_errors == 0

    def test_broken_sink_never_breaks_traced_code(self):
        recorder = get_recorder()

        def broken_sink(record):
            raise RuntimeError("sink exploded")

        recorder.add_sink(broken_sink)
        try:
            with obs_trace.span("resilient") as span:
                pass
        finally:
            recorder.remove_sink(broken_sink)
        assert recorder.buffer.spans_for_trace(span.trace_id)


class TestSpanTree:
    def test_nests_children_and_keeps_orphans_as_roots(self):
        spans = [
            {"span_id": "root", "parent_id": None, "start_time": 1.0},
            {"span_id": "child", "parent_id": "root", "start_time": 2.0},
            {"span_id": "grand", "parent_id": "child", "start_time": 3.0},
            {"span_id": "orphan", "parent_id": "missing", "start_time": 4.0},
        ]
        tree = build_span_tree(spans)
        assert [node["span_id"] for node in tree] == ["root", "orphan"]
        assert tree[0]["children"][0]["span_id"] == "child"
        assert tree[0]["children"][0]["children"][0]["span_id"] == "grand"


# --------------------------------------------------------------------------- #
# Propagation through the worker pool and the journal
# --------------------------------------------------------------------------- #


class TestWorkerPoolPropagation:
    def test_job_span_joins_the_submitters_trace(self):
        pool = WorkerPool(build_default_registry(), max_workers=1)
        try:
            with obs_trace.span("test.submit") as parent:
                job = pool.submit(
                    "codec_compress", {"codec": "prune", "rows": 16, "cols": 64, "seed": 21}
                )
            assert job.wait(30)
            assert job.trace_id == parent.trace_id
            assert job.parent_span_id == parent.span_id
            assert job.worker  # the executing thread identified itself
        finally:
            pool.shutdown()
        spans = get_recorder().buffer.spans_for_trace(parent.trace_id)
        job_spans = [s for s in spans if s["name"] == "job.run"]
        assert len(job_spans) == 1
        assert job_spans[0]["parent_id"] == parent.span_id
        assert job_spans[0]["attrs"]["job_id"] == job.job_id
        # The codec work nests under the job span, in the same trace.
        codec_spans = [s for s in spans if s["name"] == "codec.compress"]
        assert codec_spans and codec_spans[0]["parent_id"] == job_spans[0]["span_id"]

    def test_submit_without_context_mints_a_trace(self):
        pool = WorkerPool(build_default_registry(), max_workers=1)
        try:
            job = pool.submit("prune_tensor", {"rows": 16, "cols": 64, "seed": 3})
            assert job.wait(30)
        finally:
            pool.shutdown()
        assert job.trace_id and len(job.trace_id) == 32


class TestJournalPropagation:
    def test_replay_preserves_trace_identity(self, tmp_path):
        from repro.service.journal import JobJournal

        journal = JobJournal(tmp_path)
        pool = WorkerPool(build_default_registry(), max_workers=1, journal=journal)
        try:
            job = pool.submit("prune_tensor", {"rows": 16, "cols": 64, "seed": 5})
            assert job.wait(30)
        finally:
            pool.shutdown()
        original_trace = job.trace_id

        replay_journal = JobJournal(tmp_path)
        replay_pool = WorkerPool(
            build_default_registry(), max_workers=1, journal=replay_journal
        )
        try:
            stats = replay_journal.replay(replay_pool)
            assert stats["replayed"] == 1
            restored = replay_pool.store.get(job.job_id)
            assert restored is not None
            assert restored.trace_id == original_trace
        finally:
            replay_pool.shutdown()


# --------------------------------------------------------------------------- #
# End-to-end: federated dispatch produces one connected span tree per cell
# --------------------------------------------------------------------------- #

#: Two pipeline cells (distinct seeds: no cache hits, every cell executes).
TRACE_SPEC = {
    "name": "trace-test",
    "grids": [
        {
            "name": "pipe",
            "scenario": "codec_compress",
            "params": {
                "rows": 16,
                "cols": 64,
                "stages": [
                    {"codec": "prune"},
                    {"codec": "ptq", "params": {"bits": 6}},
                ],
            },
            "sweep": {"seed": [31, 32]},
        },
    ],
}


def _names(children):
    return sorted(node["name"] for node in children)


class TestFederatedSpanTree:
    def test_dispatch_yields_one_connected_tree(self, tmp_path):
        servers, threads = [], []
        for _ in range(2):
            server = create_server(port=0, max_workers=2)
            thread = threading.Thread(target=server.serve_forever, daemon=True)
            thread.start()
            servers.append(server)
            threads.append(thread)
        endpoints = [f"http://127.0.0.1:{server.port}" for server in servers]
        try:
            dispatcher = CampaignDispatcher(
                parse_spec(TRACE_SPEC), endpoints, tmp_path / "run", poll_interval=0.02
            )
            stats = dispatcher.run()
        finally:
            for server, thread in zip(servers, threads, strict=False):
                server.close()
                thread.join(timeout=10)

        assert stats["executed"] == 2
        trace_id = stats["trace_id"]
        assert trace_id
        # Both serve nodes run in this process, so the process recorder holds
        # the client-side AND node-side spans of the trace.
        spans = get_recorder().buffer.spans_for_trace(trace_id)
        tree = build_span_tree(spans)

        assert len(tree) == 1, "the whole dispatch must be one connected tree"
        root = tree[0]
        assert root["name"] == "campaign.dispatch"
        assert root["status"] == "ok"

        cells = root["children"]
        assert _names(cells) == ["dispatch.cell", "dispatch.cell"]
        assert {cell["attrs"]["cell"] for cell in cells} == {"pipe/0", "pipe/1"}
        for cell in cells:
            # Exactly the submit POST: poll GETs stay out of the trace.
            assert _names(cell["children"]) == ["http.request"]
            http = cell["children"][0]
            assert http["attrs"]["method"] == "POST"
            assert http["attrs"]["route"] == "/v1/jobs"

            assert _names(http["children"]) == ["job.run"]
            job = http["children"][0]
            assert job["attrs"]["scenario"] == "codec_compress"
            assert job["attrs"]["cache_hit"] is False

            assert _names(job["children"]) == ["codec.compress"]
            codec = job["children"][0]
            assert codec["attrs"]["codec"] == "pipeline"

            stage_spans = codec["children"]
            assert _names(stage_spans) == ["pipeline.stage", "pipeline.stage"]
            assert [s["attrs"]["codec"] for s in stage_spans] == ["prune", "ptq"]

    def test_trace_endpoint_serves_the_job_tree(self, tmp_path):
        server = create_server(port=0, max_workers=2)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            client = ServiceClient(f"http://127.0.0.1:{server.port}")
            record = client.submit(
                "codec_compress",
                {"codec": "prune", "rows": 16, "cols": 64, "seed": 41},
                wait=30.0,
            )
            assert record["state"] == "done"
            payload = client.job_trace(record["job_id"])
        finally:
            server.close()
            thread.join(timeout=10)

        assert payload["job_id"] == record["job_id"]
        assert payload["trace_id"] == record["trace_id"]
        assert payload["span_count"] >= 2
        roots = payload["trace"]
        job_spans = [
            node for root in roots
            for node in ([root] + root["children"])
            if node["name"] == "job.run"
        ]
        assert len(job_spans) == 1
        assert _names(job_spans[0]["children"]) == ["codec.compress"]
