"""Packaging for the BBS reproduction (``src`` layout, console entry point).

Kept as a plain ``setup.py`` so editable installs work on offline machines
without the ``wheel`` package: pip's legacy ``--no-use-pep517`` path needs
exactly this file.  The repository's ``pyproject.toml`` holds lint
configuration only — no ``[build-system]``/``[project]`` tables — so that
path keeps working.
"""

from setuptools import find_packages, setup

setup(
    name="repro-bbs",
    version="0.1.0",
    description=(
        "Reproduction of BBS (MICRO 2024): bi-directional bit-level sparsity "
        "compression, cycle-level accelerator models, and a "
        "compression-as-a-service HTTP/JSON API"
    ),
    author="paper-repo-growth",
    license="MIT",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=["numpy"],
    extras_require={
        "test": ["pytest", "pytest-benchmark", "hypothesis"],
    },
    entry_points={
        "console_scripts": [
            "repro=repro.cli:main",
        ],
    },
    classifiers=[
        "Programming Language :: Python :: 3",
        "Programming Language :: Python :: 3.10",
        "Programming Language :: Python :: 3.11",
        "Topic :: Scientific/Engineering",
    ],
)
