"""Setup shim so that editable installs work on offline machines without the
``wheel`` package (pip's legacy ``--no-use-pep517`` path needs a setup.py)."""
from setuptools import setup

setup()
